package telemetry

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

// driveHub builds a hub with every metric kind plus a sampled run, so the
// encode/decode tests cover the full persisted surface.
func driveHub(t *testing.T) *Telemetry {
	t.Helper()
	reg := NewRegistry()
	tel := &Telemetry{Metrics: reg}
	tel.Sampler = NewSampler(reg, 10*sim.Microsecond, 8)
	c := reg.Counter("pkts", L("port", "0"))
	g := reg.Gauge("depth", reg.InstanceLabel("sw"))
	h := reg.Histogram("lat")
	reg.Set("exp.cct", 1234, L("arch", "adcp"))
	v := 0.0
	reg.ObserveFunc("occupancy", func() float64 { return v })
	eng := sim.NewEngine()
	tel.Sampler.Attach(eng)
	for i := 1; i <= 20; i++ {
		i := i
		eng.Schedule(sim.Time(i)*3*sim.Microsecond, func() {
			c.Add(uint64(i))
			g.Set(int64(i % 5))
			h.Observe(float64(i) * 1.5)
			v = float64(i)
		})
	}
	eng.Run()
	return tel
}

func hubJSON(t *testing.T, tel *Telemetry) (reg, samples []byte) {
	t.Helper()
	var rb, sb bytes.Buffer
	if err := tel.Metrics.WriteJSON(&rb); err != nil {
		t.Fatal(err)
	}
	if err := tel.Sampler.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	return rb.Bytes(), sb.Bytes()
}

// The persistence contract the run journal depends on: for a quiescent
// hub, Merge(dst, Decode(Encode(src))) must be indistinguishable — in
// exported bytes — from Merge(dst, src). Otherwise a resumed sweep would
// not be byte-identical to an uninterrupted one.
func TestEncodeDecodeMergeEquivalence(t *testing.T) {
	src1, src2 := driveHub(t), driveHub(t)

	direct := &Telemetry{Metrics: NewRegistry()}
	direct.Sampler = NewSampler(direct.Metrics, 10*sim.Microsecond, 8)
	Merge(direct, src1)

	enc, err := EncodeHubState(src2)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeHubState(enc)
	if err != nil {
		t.Fatal(err)
	}
	viaDisk := &Telemetry{Metrics: NewRegistry()}
	viaDisk.Sampler = NewSampler(viaDisk.Metrics, 10*sim.Microsecond, 8)
	Merge(viaDisk, dec)

	dr, ds := hubJSON(t, direct)
	vr, vs := hubJSON(t, viaDisk)
	if !bytes.Equal(dr, vr) {
		t.Fatalf("registry bytes diverge after an encode/decode round trip:\ndirect: %s\nvia disk: %s", dr, vr)
	}
	if !bytes.Equal(ds, vs) {
		t.Fatalf("sampler bytes diverge after an encode/decode round trip:\ndirect: %s\nvia disk: %s", ds, vs)
	}
}

// Encoding is canonical: the same quiescent hub encodes to the same bytes
// every time, so journal digests are stable.
func TestEncodeHubStateCanonical(t *testing.T) {
	tel := driveHub(t)
	a, err := EncodeHubState(tel)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeHubState(tel)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("encoding the same hub twice produced different bytes")
	}
}

func TestDecodeHubStateRejectsWrongSchema(t *testing.T) {
	if _, err := DecodeHubState([]byte(`{"schema":"bogus/9"}`)); err == nil {
		t.Fatal("wrong schema decoded without error")
	}
	if _, err := DecodeHubState([]byte(`not json`)); err == nil {
		t.Fatal("garbage decoded without error")
	}
}

// A second merge after decode must keep working: decoded func metrics are
// frozen at their encoded value, and decoded sampler series append to the
// destination's run sequence like live ones do.
func TestDecodedHubMergesRepeatedly(t *testing.T) {
	dst := &Telemetry{Metrics: NewRegistry()}
	dst.Sampler = NewSampler(dst.Metrics, 10*sim.Microsecond, 8)
	for i := 0; i < 3; i++ {
		enc, err := EncodeHubState(driveHub(t))
		if err != nil {
			t.Fatal(err)
		}
		dec, err := DecodeHubState(enc)
		if err != nil {
			t.Fatal(err)
		}
		Merge(dst, dec)
	}
	// Three identical runs merged: the counter accumulated three times the
	// per-run total (sum of 1..20 = 210).
	var buf bytes.Buffer
	if err := dst.Metrics.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"pkts"`)) {
		t.Fatalf("merged registry lost the counter: %s", buf.Bytes())
	}
	snap := dst.Metrics.Snapshot()
	found := false
	for _, m := range snap.Metrics {
		if m.Name == "pkts" {
			found = true
			if m.Value != 3*210 {
				t.Fatalf("pkts after three merges = %g, want %d", m.Value, 3*210)
			}
		}
	}
	if !found {
		t.Fatal("pkts missing from snapshot")
	}
}
