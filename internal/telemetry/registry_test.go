package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("pkts", L("arch", "rmt"))
	c1.Inc()
	c2 := r.Counter("pkts", L("arch", "rmt"))
	if c1 != c2 {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	c2.Add(2)
	if c1.Value() != 3 {
		t.Errorf("counter = %d, want 3", c1.Value())
	}
	// Different labels → different series.
	other := r.Counter("pkts", L("arch", "adcp"))
	if other.Value() != 0 {
		t.Error("label variant shares state")
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2", r.Len())
	}
}

func TestRegistryLabelOrderIrrelevant(t *testing.T) {
	r := NewRegistry()
	a := r.Gauge("depth", L("tm", "1"), L("arch", "adcp"))
	b := r.Gauge("depth", L("arch", "adcp"), L("tm", "1"))
	if a != b {
		t.Fatal("label order changed series identity")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("registering counter series as gauge did not panic")
		}
	}()
	r.Gauge("x")
}

func TestRegistrySetOverwrites(t *testing.T) {
	r := NewRegistry()
	r.Set("exp.keyrate.speedup", 4, L("width", "4"))
	r.Set("exp.keyrate.speedup", 16, L("width", "4"))
	snap := r.Snapshot()
	if len(snap.Metrics) != 1 || snap.Metrics[0].Value != 16 {
		t.Errorf("snapshot = %+v, want single value 16", snap.Metrics)
	}
}

func TestRegistryObserveFunc(t *testing.T) {
	r := NewRegistry()
	n := 0
	r.ObserveFunc("live", func() float64 { n++; return float64(n) })
	if got := r.Snapshot().Metrics[0].Value; got != 1 {
		t.Errorf("first snapshot = %v, want 1", got)
	}
	if got := r.Snapshot().Metrics[0].Value; got != 2 {
		t.Errorf("second snapshot = %v, want 2 (fn not re-evaluated)", got)
	}
}

func TestRegistryGaugePeakExported(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("occ")
	g.Set(-5)
	g.Set(-9)
	snap := r.Snapshot()
	if snap.Metrics[0].Peak == nil || *snap.Metrics[0].Peak != -5 {
		t.Errorf("peak = %v, want -5", snap.Metrics[0].Peak)
	}
	if snap.Metrics[0].Value != -9 {
		t.Errorf("value = %v, want -9", snap.Metrics[0].Value)
	}
}

func TestRegistryHistogramSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for _, v := range []float64{4, 1, 3, 2} {
		h.Observe(v)
	}
	s := r.Snapshot().Metrics[0]
	if s.Hist == nil {
		t.Fatal("no histogram summary")
	}
	if s.Hist.Count != 4 || s.Hist.Min != 1 || s.Hist.Max != 4 || s.Hist.Sum != 10 {
		t.Errorf("summary = %+v", s.Hist)
	}
}

// Snapshot ordering and JSON bytes must not depend on registration order —
// the byte-identical-output guarantee of adcpsim -metrics.
func TestRegistryDeterministicJSON(t *testing.T) {
	build := func(reverse bool) []byte {
		r := NewRegistry()
		ops := []func(){
			func() { r.Counter("b.count", L("arch", "rmt")).Add(7) },
			func() { r.Set("a.value", 1.5, L("k", "2"), L("j", "1")) },
			func() { r.Gauge("c.gauge").Set(3) },
		}
		if reverse {
			for i := len(ops) - 1; i >= 0; i-- {
				ops[i]()
			}
		} else {
			for _, op := range ops {
				op()
			}
		}
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := build(false), build(true)
	if !bytes.Equal(a, b) {
		t.Errorf("registration order changed JSON:\n%s\nvs\n%s", a, b)
	}
	// The document must be valid JSON with the expected schema and order.
	var doc Snapshot
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != SnapshotSchema {
		t.Errorf("schema = %q", doc.Schema)
	}
	names := []string{}
	for _, m := range doc.Metrics {
		names = append(names, m.Name)
	}
	want := []string{"a.value", "b.count", "c.gauge"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("order = %v, want %v", names, want)
		}
	}
}

func TestRegistryInstanceLabel(t *testing.T) {
	r := NewRegistry()
	a, b := r.InstanceLabel("instance"), r.InstanceLabel("instance")
	if a.Value != "0" || b.Value != "1" || a.Key != "instance" {
		t.Errorf("instances = %+v, %+v", a, b)
	}
	// The ordinal sequence is registry-wide, not per-key, so values are
	// unique within one registry and Merge can renumber with one offset.
	if c := r.InstanceLabel("net"); c.Value != "2" {
		t.Errorf("second key continued at %s, want 2", c.Value)
	}
}
