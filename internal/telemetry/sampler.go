package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"repro/internal/sim"
)

// Point is one sampled value of one series. Run identifies which engine
// attachment produced the sample: experiments construct networks (and
// engines) sequentially, each starting its clock at zero, so points carry
// the engine-local simulated time plus the attachment ordinal instead of
// pretending all engines share one clock.
type Point struct {
	Run int      `json:"run"`
	T   sim.Time `json:"t_ps"`
	V   float64  `json:"v"`
}

// SeriesData is the exported form of one sampled series.
type SeriesData struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Kind   Kind              `json:"kind"`
	// Dropped counts points overwritten by the ring buffer (oldest-first).
	Dropped uint64  `json:"dropped,omitempty"`
	Points  []Point `json:"points"`
}

// sampledSeries is one ring buffer of Points.
type sampledSeries struct {
	name    string
	labels  []Label
	kind    Kind
	read    func() float64
	pts     []Point // ring storage, len ≤ cap
	head    int     // index of oldest point when full
	full    bool
	dropped uint64
}

func (s *sampledSeries) push(p Point, capacity int) {
	if len(s.pts) < capacity {
		s.pts = append(s.pts, p)
		return
	}
	s.pts[s.head] = p
	s.head = (s.head + 1) % capacity
	s.full = true
	s.dropped++
}

// ordered returns the points oldest-first.
func (s *sampledSeries) ordered() []Point {
	if !s.full {
		return append([]Point(nil), s.pts...)
	}
	out := make([]Point, 0, len(s.pts))
	out = append(out, s.pts[s.head:]...)
	out = append(out, s.pts[:s.head]...)
	return out
}

// Sampler periodically snapshots every scalar metric of a Registry —
// counters, gauges, and func metrics — into bounded ring-buffer time
// series, driven by *simulated* time via the sim.Engine dispatch hook.
// Samples are stamped on the interval grid (k·interval), so two runs at
// the same seed produce byte-identical CSV/JSON exports.
//
// A Sampler may be attached to several engines over its life (experiments
// build one network after another); each attachment gets its own run
// ordinal. All sampling happens on the simulation goroutine; exports take
// the sampler lock, so a serving goroutine may export concurrently.
type Sampler struct {
	mu       sync.Mutex
	reg      *Registry
	interval sim.Time
	capacity int

	series  map[string]*sampledSeries // by registry key
	regLen  int                       // registry size at last refresh
	runs    int
	lastRun int
	lastT   sim.Time

	// OnSample, when set, is called after each recorded sample, on the
	// simulation goroutine — the safe place to publish registry snapshots
	// for a concurrent HTTP plane. Set it before attaching engines.
	OnSample func(run int, at sim.Time)
}

// DefaultSampleInterval is the sampling period used when none is given.
const DefaultSampleInterval = 10 * sim.Microsecond

// DefaultSampleCapacity bounds each series ring unless overridden.
const DefaultSampleCapacity = 4096

// NewSampler builds a sampler over reg. interval ≤ 0 selects
// DefaultSampleInterval; capacity ≤ 0 selects DefaultSampleCapacity.
func NewSampler(reg *Registry, interval sim.Time, capacity int) *Sampler {
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	if capacity <= 0 {
		capacity = DefaultSampleCapacity
	}
	return &Sampler{
		reg:      reg,
		interval: interval,
		capacity: capacity,
		series:   make(map[string]*sampledSeries),
	}
}

// Interval returns the sampling period.
func (s *Sampler) Interval() sim.Time { return s.interval }

// Capacity returns the per-series ring-buffer bound.
func (s *Sampler) Capacity() int { return s.capacity }

// Attach registers the sampler on an engine's dispatch hook and records a
// baseline sample at the engine's current time. Nil-safe, so call sites
// can attach unconditionally.
func (s *Sampler) Attach(eng *sim.Engine) {
	if s == nil {
		return
	}
	s.mu.Lock()
	run := s.runs
	s.runs++
	s.mu.Unlock()
	s.sample(run, eng.Now())
	next := (eng.Now()/s.interval + 1) * s.interval
	eng.AddDispatchHook(func(at sim.Time, pending int, fired uint64) {
		if at < next {
			return
		}
		// Stamp on the grid: the sample reflects state just before the
		// first event at or past the boundary.
		stamp := (at / s.interval) * s.interval
		s.sample(run, stamp)
		next = stamp + s.interval
	})
}

// refreshLocked rebuilds the series map from the registry when series were
// registered since the last sample. Caller holds s.mu.
func (s *Sampler) refreshLocked() {
	s.reg.mu.Lock()
	defer s.reg.mu.Unlock()
	if len(s.reg.metrics) == s.regLen {
		return
	}
	s.regLen = len(s.reg.metrics)
	for k, m := range s.reg.metrics {
		if _, ok := s.series[k]; ok {
			continue
		}
		var read func() float64
		switch m.kind {
		case KindCounter:
			c := m.counter
			read = func() float64 { return float64(c.Value()) }
		case KindGauge:
			g := m.gauge
			read = func() float64 { return float64(g.Value()) }
		case KindFunc:
			read = func() float64 { return m.fn() }
		default:
			continue // histograms and headline values have their own exports
		}
		s.series[k] = &sampledSeries{name: m.name, labels: m.labels, kind: m.kind, read: read}
	}
}

// sample records one point for every scalar series.
func (s *Sampler) sample(run int, at sim.Time) {
	s.mu.Lock()
	s.refreshLocked()
	for _, ser := range s.series {
		ser.push(Point{Run: run, T: at, V: ser.read()}, s.capacity)
	}
	s.lastRun, s.lastT = run, at
	cb := s.OnSample
	s.mu.Unlock()
	if cb != nil {
		cb(run, at)
	}
}

// Sample records one point for every scalar series at the given run/time —
// for harnesses without an engine (synchronous switch drives).
func (s *Sampler) Sample(run int, at sim.Time) {
	if s == nil {
		return
	}
	s.sample(run, at)
}

// Last returns the run ordinal and simulated time of the newest sample.
func (s *Sampler) Last() (run int, at sim.Time) {
	if s == nil {
		return 0, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastRun, s.lastT
}

// Runs returns how many engines have been attached.
func (s *Sampler) Runs() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runs
}

// merge folds a quiescent point-local sampler into s: src's run ordinals
// are shifted past every run s has already recorded, instance-label values
// are shifted by the same offsets the registry merge applied (instKeys /
// instOffset from Registry.mergeFrom), and points append oldest-first
// under s's ring capacity. Merging point samplers in sweep-point order
// therefore reproduces exactly the run numbering and point sequence of a
// sequential run over one shared sampler.
func (s *Sampler) merge(src *Sampler, instKeys map[string]bool, instOffset int) {
	if s == nil || src == nil || src == s {
		return
	}
	src.mu.Lock()
	srcKeys := make([]string, 0, len(src.series))
	for k := range src.series {
		srcKeys = append(srcKeys, k)
	}
	sort.Strings(srcKeys)
	srcSeries := make([]*sampledSeries, len(srcKeys))
	for i, k := range srcKeys {
		srcSeries[i] = src.series[k]
	}
	srcRuns, srcLastRun, srcLastT := src.runs, src.lastRun, src.lastT
	src.mu.Unlock()

	s.mu.Lock()
	defer s.mu.Unlock()
	runOffset := s.runs
	s.runs += srcRuns
	for _, ser := range srcSeries {
		labels := renumberLabels(ser.labels, instKeys, instOffset)
		k, ls := key(ser.name, labels)
		dst, ok := s.series[k]
		if !ok {
			dst = &sampledSeries{name: ser.name, labels: ls, kind: ser.kind, read: ser.read}
			s.series[k] = dst
		}
		for _, p := range ser.ordered() {
			p.Run += runOffset
			dst.push(p, s.capacity)
		}
		dst.dropped += ser.dropped
	}
	if srcRuns > 0 {
		s.lastRun, s.lastT = srcLastRun+runOffset, srcLastT
	}
}

// Series exports every sampled series, sorted by name then labels, each
// with points oldest-first. Series that never received a point (registered
// after the last sample) are included with empty Points.
func (s *Sampler) Series() []SeriesData {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.series))
	for k := range s.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]SeriesData, 0, len(keys))
	for _, k := range keys {
		ser := s.series[k]
		sd := SeriesData{
			Name: ser.name, Kind: ser.kind,
			Dropped: ser.dropped, Points: ser.ordered(),
		}
		if len(ser.labels) > 0 {
			sd.Labels = make(map[string]string, len(ser.labels))
			for _, l := range ser.labels {
				sd.Labels[l.Key] = l.Value
			}
		}
		out = append(out, sd)
	}
	return out
}

// labelString renders labels as k=v pairs joined by ';' (already sorted).
func labelString(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
	}
	return b.String()
}

// WriteCSV writes every series as rows of
// name,labels,run,t_ps,value — sorted by series, points oldest-first.
// Output is byte-identical across same-seed runs: timestamps are simulated,
// series are sorted, and floats render with %g.
func (s *Sampler) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "name,labels,run,t_ps,value"); err != nil {
		return err
	}
	for _, sd := range s.Series() {
		ls := labelString(sd.Labels)
		for _, p := range sd.Points {
			if _, err := fmt.Fprintf(bw, "%s,%s,%d,%d,%g\n", sd.Name, ls, p.Run, int64(p.T), p.V); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// SamplesSchema identifies the sampler JSON document layout.
const SamplesSchema = "adcp-samples/1"

// samplesDoc is the JSON container for a sampler export.
type samplesDoc struct {
	Schema     string       `json:"schema"`
	IntervalPs int64        `json:"interval_ps"`
	Runs       int          `json:"runs"`
	Series     []SeriesData `json:"series"`
}

// WriteJSON writes the sampled series as one indented JSON document,
// byte-identical across same-seed runs.
func (s *Sampler) WriteJSON(w io.Writer) error {
	doc := samplesDoc{
		Schema:     SamplesSchema,
		IntervalPs: int64(s.interval),
		Runs:       s.Runs(),
		Series:     s.Series(),
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
