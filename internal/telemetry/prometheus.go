package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) rendered from a
// Snapshot. Metric names are sanitized ('.' and any other invalid rune →
// '_') and prefixed with "adcp_"; label values are escaped per the format
// (backslash, double-quote, newline). Families are emitted contiguously in
// snapshot order (sorted by name, then labels), each preceded by # HELP
// and # TYPE lines, so output is deterministic for a deterministic
// snapshot.
//
// Kind mapping:
//
//	counter          → counter
//	gauge/func/value → gauge   (gauge peaks export as a second
//	                            <name>_peak gauge family)
//	histogram        → summary (quantile 0.5/0.9/0.99 + _sum + _count)

// PromNamePrefix namespaces every exported metric family.
const PromNamePrefix = "adcp_"

// promName sanitizes a registry metric name into a Prometheus name.
func promName(name string) string {
	var b strings.Builder
	b.WriteString(PromNamePrefix)
	for _, r := range name {
		// Digits are fine anywhere here: the prefix supplies the
		// non-digit first character the format requires.
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':',
			r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabelName sanitizes a label key ([a-zA-Z_][a-zA-Z0-9_]*).
func promLabelName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promEscape escapes a label value per the exposition format.
func promEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// promLabels renders a sorted label block ({k="v",...}), optionally with
// one extra label appended (the summary quantile). Labels in a
// MetricSnapshot map marshal here in sorted key order for determinism.
func promLabels(labels map[string]string, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	// Insertion-sorted tiny slices; snapshot labels are already few.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, promLabelName(k), promEscape(labels[k]))
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraKey, promEscape(extraVal))
	}
	b.WriteByte('}')
	return b.String()
}

func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// promType maps a metric kind to its exposition TYPE.
func promType(k Kind) string {
	switch k {
	case KindCounter:
		return "counter"
	case KindHistogram:
		return "summary"
	default:
		return "gauge"
	}
}

// WritePrometheusSnapshot renders snap in the Prometheus text exposition
// format. Rendering from an immutable Snapshot (rather than the live
// Registry) lets a serving goroutine expose metrics while the simulation
// goroutine keeps mutating them: the simulation publishes snapshots at
// safe points and the server renders whichever one is current.
func WritePrometheusSnapshot(w io.Writer, snap Snapshot) error {
	bw := bufio.NewWriter(w)

	// Group consecutive snapshot entries into families by exported name.
	// The snapshot is sorted by name, so families are contiguous; peaks
	// are buffered per family and emitted as a trailing _peak family.
	type peakSample struct {
		labels map[string]string
		v      int64
	}
	var family string
	var peaks []peakSample
	flushPeaks := func() error {
		if len(peaks) == 0 {
			return nil
		}
		name := family + "_peak"
		fmt.Fprintf(bw, "# HELP %s Peak value of gauge %s over the run.\n", name, family)
		fmt.Fprintf(bw, "# TYPE %s gauge\n", name)
		for _, p := range peaks {
			fmt.Fprintf(bw, "%s%s %s\n", name, promLabels(p.labels, "", ""), promFloat(float64(p.v)))
		}
		peaks = peaks[:0]
		return nil
	}

	for _, m := range snap.Metrics {
		name := promName(m.Name)
		if name != family {
			if err := flushPeaks(); err != nil {
				return err
			}
			family = name
			fmt.Fprintf(bw, "# HELP %s %s metric %s from the adcp simulator registry.\n",
				name, promType(m.Kind), m.Name)
			fmt.Fprintf(bw, "# TYPE %s %s\n", name, promType(m.Kind))
		}
		switch m.Kind {
		case KindHistogram:
			h := m.Hist
			if h == nil {
				continue
			}
			for _, q := range []struct {
				q string
				v float64
			}{{"0.5", h.P50}, {"0.9", h.P90}, {"0.99", h.P99}} {
				fmt.Fprintf(bw, "%s%s %s\n", name, promLabels(m.Labels, "quantile", q.q), promFloat(q.v))
			}
			fmt.Fprintf(bw, "%s_sum%s %s\n", name, promLabels(m.Labels, "", ""), promFloat(h.Sum))
			fmt.Fprintf(bw, "%s_count%s %d\n", name, promLabels(m.Labels, "", ""), h.Count)
		default:
			fmt.Fprintf(bw, "%s%s %s\n", name, promLabels(m.Labels, "", ""), promFloat(m.Value))
			if m.Peak != nil {
				peaks = append(peaks, peakSample{labels: m.Labels, v: *m.Peak})
			}
		}
	}
	if err := flushPeaks(); err != nil {
		return err
	}
	return bw.Flush()
}

// WritePrometheus renders the registry's current state in the Prometheus
// text exposition format. For concurrent serving, prefer publishing
// snapshots from the simulation goroutine and rendering those.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return WritePrometheusSnapshot(w, r.Snapshot())
}
