package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestChainAdvanceTilesTimeExactly(t *testing.T) {
	c := NewChain(100, 7, nil, 0)
	c.Advance(150, BucketQueueing)
	c.Advance(150, BucketSerialization) // no-op: to == cursor
	c.Advance(140, BucketRetx)          // no-op: to < cursor
	c.Advance(300, BucketSerialization)
	c.Advance(450, BucketPropagation)
	bd := c.Breakdown()
	if got, want := bd.Get(BucketQueueing), sim.Time(50); got != want {
		t.Fatalf("queueing = %v, want %v", got, want)
	}
	if got, want := bd.Get(BucketSerialization), sim.Time(150); got != want {
		t.Fatalf("serialization = %v, want %v", got, want)
	}
	if got, want := bd.Sum(), c.Cursor()-c.Start(); got != want {
		t.Fatalf("sum %v != cursor-start %v (tiling broken)", got, want)
	}
	if bd.Get(BucketRetx) != 0 {
		t.Fatalf("backwards advance charged retx: %v", bd.Get(BucketRetx))
	}
}

func TestChainForkIsolatesBranches(t *testing.T) {
	c := NewChain(0, 1, nil, 0)
	c.Advance(10, BucketQueueing)
	f := c.Fork()
	c.Advance(30, BucketRetx)
	f.Advance(25, BucketPipeline)
	if got := f.Breakdown().Get(BucketRetx); got != 0 {
		t.Fatalf("fork saw parent's post-fork retx: %v", got)
	}
	if got := c.Breakdown().Get(BucketPipeline); got != 0 {
		t.Fatalf("parent saw fork's pipeline: %v", got)
	}
	if got, want := f.Breakdown().Get(BucketQueueing), sim.Time(10); got != want {
		t.Fatalf("fork lost pre-fork history: %v != %v", got, want)
	}
}

func TestNilChainIsNoOp(t *testing.T) {
	var c *Chain
	c.Advance(10, BucketQueueing) // must not panic
	if c.Fork() != nil {
		t.Fatal("nil fork should stay nil")
	}
	if c.Breakdown().Sum() != 0 {
		t.Fatal("nil breakdown should be zero")
	}
}

func TestSpansEmitLineageOntoTracer(t *testing.T) {
	tr := NewTracer()
	pid := tr.NewProcess("test")
	sp := NewSpans(tr, pid, tr.NewThread(pid, "spans"))
	root := sp.NewSpan()
	c := NewChain(1000, 42, sp, root)
	c.Advance(1500, BucketSerialization)
	f := c.Fork()
	f.Advance(2000, BucketPipeline)

	var span, other int
	for _, ev := range tr.Events() {
		if ev.Cat == "span" {
			span++
			if !strings.HasPrefix(ev.Name, "span.") {
				t.Fatalf("span event named %q", ev.Name)
			}
			if ev.Args["coflow"] != uint32(42) {
				t.Fatalf("span event lost coflow: %v", ev.Args)
			}
		} else if ev.Ph != PhaseMetadata {
			other++
		}
	}
	// packet instant + serialization + fork's packet instant + pipeline.
	if span != 4 {
		t.Fatalf("got %d span events, want 4", span)
	}
	if other != 0 {
		t.Fatalf("%d non-span, non-metadata events leaked", other)
	}
}

func TestWriteChromeTraceCatFilters(t *testing.T) {
	tr := NewTracer()
	pid := tr.NewProcess("p")
	tid := tr.NewThread(pid, "t")
	tr.Instant(1, "keep", "span", pid, tid, nil)
	tr.Instant(2, "drop", "net", pid, tid, nil)
	var buf bytes.Buffer
	if err := tr.WriteChromeTraceCat(&buf, "span"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"keep"`) || strings.Contains(out, `"drop"`) {
		t.Fatalf("category filter failed: %s", out)
	}
	if !strings.Contains(out, "process_name") {
		t.Fatalf("metadata events must survive filtering: %s", out)
	}
	buf.Reset()
	if err := tr.WriteJSONLCat(&buf, "span"); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 4 { // 2 metadata + keep + trailer
		t.Fatalf("jsonl filter wrote %d lines, want 4: %s", lines, buf.String())
	}
}

func TestFlightRecorderRingWrapsAndDumps(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		f.Record(sim.Time(i), "ev", int64(i), 0)
	}
	if f.Len() != 4 {
		t.Fatalf("len = %d, want 4", f.Len())
	}
	if f.Total() != 10 {
		t.Fatalf("total = %d, want 10", f.Total())
	}
	evs := f.Events()
	if evs[0].A != 6 || evs[3].A != 9 {
		t.Fatalf("ring not oldest-first: %+v", evs)
	}
	var buf bytes.Buffer
	f.Dump(&buf, "test trigger")
	out := buf.String()
	if !strings.Contains(out, "flight recorder dump (test trigger): last 4 of 10 events") {
		t.Fatalf("dump header wrong: %s", out)
	}
	if !strings.Contains(out, "t=9ps") {
		t.Fatalf("dump lost newest event: %s", out)
	}
	var nilRec *FlightRecorder
	nilRec.Record(0, "x", 0, 0) // must not panic
	nilRec.Dump(&buf, "nil")
}
