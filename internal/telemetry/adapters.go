package telemetry

import (
	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/tm"
)

// PipelineObserver adapts a pipeline's existing Observer stream into
// telemetry. now supplies the current simulated time (the engine clock of
// the surrounding network, or a constant for synchronous harnesses);
// clockHz converts the pipeline's modeled cycles into simulated durations.
//
// lat, when non-nil, receives every traversal's latency in picoseconds — a
// bounded log-bucketed histogram, so million-packet runs cost O(buckets)
// memory. tr, when non-nil, receives trace events: with detail=false only
// per-traversal summaries (one complete event per EvDone, plus an instant
// for each recirculation request); with detail=true every stage visit
// becomes an instant event — stage occupancy at full resolution, at a
// large event-volume cost. sp, when non-nil, additionally emits "span"
// category events — a pipeline-traversal span per EvDone and a
// recirculation marker — feeding the causal-span layer. With all sinks
// nil the returned observer is nil, keeping the pipeline's unobserved
// fast path.
func PipelineObserver(lat *Histogram, tr *Tracer, sp *Spans, detail bool, now func() sim.Time, clockHz float64, pid, tid int) pipeline.Observer {
	if lat == nil && tr == nil {
		return nil
	}
	cycleDur := func(cycles int) sim.Time {
		if clockHz <= 0 {
			return 0
		}
		return sim.Time(float64(cycles) * 1e12 / clockHz)
	}
	return func(ev pipeline.Event) {
		switch ev.Kind {
		case pipeline.EvDone:
			if lat != nil {
				lat.Observe(float64(cycleDur(ev.Cycles)))
			}
			if tr == nil {
				return
			}
			tr.Complete(now(), cycleDur(ev.Cycles), "traversal", "pipeline", pid, tid,
				map[string]any{"cycles": ev.Cycles, "verdict": ev.Verdict.String()})
			if sp != nil {
				sp.Complete(now(), cycleDur(ev.Cycles), BucketPipeline.String(), sp.NewSpan(), 0, 0)
			}
			if ev.Verdict == pipeline.VerdictRecirculate {
				tr.Instant(now(), "recirculate", "pipeline", pid, tid, nil)
				if sp != nil {
					sp.Instant(now(), BucketRecirculation.String(), sp.NewSpan(), 0, 0)
				}
			}
		case pipeline.EvStage:
			if tr != nil && detail {
				tr.Instant(now(), "stage", "pipeline", pid, tid,
					map[string]any{"stage": ev.Stage, "cycles": ev.Cycles})
			}
		case pipeline.EvParsed, pipeline.EvDeparsed:
			if tr != nil && detail {
				tr.Instant(now(), ev.Kind.String(), "pipeline", pid, tid,
					map[string]any{"cycles": ev.Cycles})
			}
		}
	}
}

// InstrumentTM registers one shared-memory traffic manager's counters under
// the base labels plus a tm=<which> dimension, all lazily evaluated at
// snapshot time, and returns an occupancy gauge for a TMObserver to feed
// (its peak then appears in the export). The pending-packet count is also
// registered so the sampler can plot live queue depth.
func InstrumentTM(reg *Registry, t *tm.SharedMemoryTM, base []Label, which string) *Gauge {
	ls := make([]Label, 0, len(base)+1)
	ls = append(ls, base...)
	ls = append(ls, L("tm", which))
	reg.ObserveFunc("switch.tm.enqueued_pkts", func() float64 { return float64(t.Enqueued()) }, ls...)
	reg.ObserveFunc("switch.tm.dequeued_pkts", func() float64 { return float64(t.Dequeued()) }, ls...)
	reg.ObserveFunc("switch.tm.dropped_pkts", func() float64 { return float64(t.Dropped()) }, ls...)
	reg.ObserveFunc("switch.tm.peak_bytes", func() float64 { return float64(t.PeakOccupancy()) }, ls...)
	reg.ObserveFunc("switch.tm.pending_pkts", func() float64 { return float64(t.Pending()) }, ls...)
	return reg.Gauge("switch.tm.occupancy_bytes", ls...)
}

// TMObserver adapts a traffic manager's Observer stream into telemetry:
// shared-buffer occupancy into gauge g (which then also tracks the peak),
// per-packet queueing delay into histogram wait (valid dequeues only —
// requires the TM to carry a clock via SetClock), tail drops as instant
// trace events, and — with detail — an occupancy counter sample per
// operation (a Perfetto counter track). sp, when non-nil, emits a "span"
// category queueing span for every timed dequeue (the packet's residence
// in the traffic manager). Any sink may be nil; with all nil
// the returned observer is nil, so the TM keeps its unobserved fast path.
func TMObserver(g *Gauge, wait *Histogram, tr *Tracer, sp *Spans, detail bool, now func() sim.Time, name string, pid, tid int) tm.Observer {
	if g == nil && wait == nil && tr == nil {
		return nil
	}
	return func(ev tm.Event) {
		if g != nil {
			g.Set(int64(ev.OccupancyBytes))
		}
		if wait != nil && ev.Op == tm.OpDequeue && ev.WaitPs >= 0 {
			wait.Observe(float64(ev.WaitPs))
			if sp != nil && ev.WaitPs > 0 {
				sp.Complete(now()-sim.Time(ev.WaitPs), sim.Time(ev.WaitPs), BucketQueueing.String(), sp.NewSpan(), 0, 0)
			}
		}
		if tr == nil {
			return
		}
		if ev.Op == tm.OpDrop {
			tr.Instant(now(), name+".drop", "tm", pid, tid,
				map[string]any{"bytes": ev.Bytes, "queue": ev.Output})
		} else if detail {
			tr.Counter(now(), name+".occupancy_bytes", pid,
				map[string]float64{"bytes": float64(ev.OccupancyBytes)})
		}
	}
}
