package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

// regOp is one observation applied to a registry — merge tests apply the
// same ops to point-local registries and to one shared reference registry
// and require identical exported bytes.
type regOp func(r *Registry)

func applyAll(r *Registry, ops []regOp) {
	for _, op := range ops {
		op(r)
	}
}

func regJSON(t *testing.T, r *Registry) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The registry merge contract: merging point-local registries in point
// order produces byte-for-byte the registry that observing the union of
// operations sequentially would have — including overlapping series
// (counters accumulate, gauges keep the newest value and the max peak,
// histograms union their buckets, headline values keep the newest Set).
func TestRegistryMergeEqualsSequentialUnion(t *testing.T) {
	opsA := []regOp{
		func(r *Registry) { r.Counter("pkts", L("arch", "rmt")).Add(3) },
		func(r *Registry) { g := r.Gauge("depth"); g.Set(9); g.Set(2) },
		func(r *Registry) { h := r.Histogram("lat"); h.Observe(10); h.Observe(20) },
		func(r *Registry) { r.Set("exp.cct", 100, L("arch", "rmt")) },
		func(r *Registry) { r.Counter("only_a").Add(1) },
	}
	opsB := []regOp{
		func(r *Registry) { r.Counter("pkts", L("arch", "rmt")).Add(4) },
		func(r *Registry) { g := r.Gauge("depth"); g.Set(7); g.Set(1) },
		func(r *Registry) { h := r.Histogram("lat"); h.Observe(15); h.Observe(200) },
		func(r *Registry) { r.Set("exp.cct", 140, L("arch", "rmt")) },
		func(r *Registry) { r.Histogram("only_b").Observe(5) },
	}

	ref := NewRegistry()
	applyAll(ref, opsA)
	applyAll(ref, opsB)

	a, b := NewRegistry(), NewRegistry()
	applyAll(a, opsA)
	applyAll(b, opsB)
	a.Merge(b)

	if got, want := regJSON(t, a), regJSON(t, ref); !bytes.Equal(got, want) {
		t.Errorf("merged registry differs from sequential union:\n%s\nvs\n%s", got, want)
	}
}

// Overlapping gauges: the merged value is the source's only when the
// source ever Set it; the peak is the max of both.
func TestRegistryMergeGaugeUntouchedSource(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Gauge("depth").Set(5)
	b.Gauge("depth") // registered but never Set
	a.Merge(b)
	ref := NewRegistry()
	ref.Gauge("depth").Set(5)
	ref.Gauge("depth")
	if got, want := regJSON(t, a), regJSON(t, ref); !bytes.Equal(got, want) {
		t.Errorf("unset source gauge clobbered the destination:\n%s\nvs\n%s", got, want)
	}
}

// Instance-label renumbering: each point-local registry numbers its
// instances from zero; merging in point order must reproduce the exact
// numbering one shared registry would have handed out — across different
// instance-label keys, since the ordinal sequence is registry-wide.
func TestRegistryMergeRenumbersInstances(t *testing.T) {
	point := func(r *Registry, base uint64) {
		i1 := r.InstanceLabel("instance")
		r.Counter("sw.pkts", L("arch", "rmt"), i1).Add(base)
		n := r.InstanceLabel("net")
		r.Counter("net.pkts", n).Add(base + 1)
	}

	ref := NewRegistry()
	point(ref, 10)
	point(ref, 20)
	point(ref, 30)

	dst := NewRegistry()
	point(dst, 10)
	for _, base := range []uint64{20, 30} {
		local := NewRegistry()
		point(local, base)
		dst.Merge(local)
	}

	if got, want := regJSON(t, dst), regJSON(t, ref); !bytes.Equal(got, want) {
		t.Errorf("instance renumbering diverged from sequential numbering:\n%s\nvs\n%s", got, want)
	}
}

// Func metrics absent from the destination are adopted live: the closure
// keeps being evaluated at snapshot time after the merge.
func TestRegistryMergeAdoptsObserveFunc(t *testing.T) {
	dst, src := NewRegistry(), NewRegistry()
	n := 0.0
	src.ObserveFunc("live", func() float64 { n++; return n })
	dst.Merge(src)
	if got := dst.Snapshot().Metrics[0].Value; got != 1 {
		t.Errorf("first post-merge snapshot = %v, want 1", got)
	}
	if got := dst.Snapshot().Metrics[0].Value; got != 2 {
		t.Errorf("second post-merge snapshot = %v, want 2 (closure not live)", got)
	}
}

func TestRegistryMergeKindMismatchPanics(t *testing.T) {
	dst, src := NewRegistry(), NewRegistry()
	dst.Counter("x")
	src.Gauge("x")
	defer func() {
		if recover() == nil {
			t.Fatal("merging mismatched kinds did not panic")
		}
	}()
	dst.Merge(src)
}

// Sampler merge: run ordinals shift past the destination's runs and
// instance labels shift by the registry merge's offset, so point-local
// samplers folded in point order yield one coherent export. (A shared
// sequential sampler is not the reference here: it would keep sampling
// run 0's series during run 1 — exactly the cross-point coupling the
// per-point hubs remove.)
func TestSamplerMergeOffsetsRunsAndInstances(t *testing.T) {
	buildPoint := func(add uint64) *Telemetry {
		reg := NewRegistry()
		samp := NewSampler(reg, sim.Microsecond, 0)
		reg.Counter("pkts", reg.InstanceLabel("net")).Add(add)
		samp.Attach(sim.NewEngine()) // run 0, baseline sample at t=0
		return &Telemetry{Metrics: reg, Sampler: samp}
	}
	dst := buildPoint(5)
	Merge(dst, buildPoint(7))

	if got := dst.Sampler.Runs(); got != 2 {
		t.Errorf("merged Runs() = %d, want 2", got)
	}
	var buf bytes.Buffer
	if err := dst.Sampler.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"name,labels,run,t_ps,value",
		"pkts,net=0,0,0,5",
		"pkts,net=1,1,0,7",
		"",
	}, "\n")
	if buf.String() != want {
		t.Errorf("merged CSV:\n%s\nwant:\n%s", buf.String(), want)
	}
}

// Merging through the hub-level Merge must apply the SAME instance offset
// to registry and sampler — a skew between the two would attach samples to
// the wrong switch.
func TestMergeKeepsRegistryAndSamplerInstancesAligned(t *testing.T) {
	buildPoint := func(add uint64) *Telemetry {
		reg := NewRegistry()
		samp := NewSampler(reg, sim.Microsecond, 0)
		reg.Counter("pkts", reg.InstanceLabel("net")).Add(add)
		samp.Attach(sim.NewEngine())
		return &Telemetry{Metrics: reg, Sampler: samp}
	}
	dst := buildPoint(1)
	for _, add := range []uint64{2, 3} {
		Merge(dst, buildPoint(add))
	}
	// Registry series and sampled series must carry the same instance sets.
	regInsts := map[string]bool{}
	for _, m := range dst.Metrics.Snapshot().Metrics {
		regInsts[m.Labels["net"]] = true
	}
	sampInsts := map[string]bool{}
	for _, sd := range dst.Sampler.Series() {
		sampInsts[sd.Labels["net"]] = true
	}
	for inst := range regInsts {
		if !sampInsts[inst] {
			t.Errorf("instance %q present in registry but not sampler", inst)
		}
	}
	if len(regInsts) != 3 || len(sampInsts) != 3 {
		t.Errorf("instances: registry %v, sampler %v, want 3 each", regInsts, sampInsts)
	}
}

func TestMergeNilSafe(t *testing.T) {
	Merge(nil, &Telemetry{})
	Merge(&Telemetry{}, nil)
	Merge(&Telemetry{Metrics: NewRegistry()}, &Telemetry{}) // no src sinks
}
