package telemetry

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
)

var (
	promMetricLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9].*|[+-]Inf|NaN)$`)
	promHelpLine   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .+$`)
	promTypeLine   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|summary|histogram|untyped)$`)
)

// parseProm validates the exposition line by line and returns, per family,
// the declared TYPE and the sample lines. It enforces the invariants the
// format requires: HELP then TYPE precede a family's samples, families are
// contiguous, and every sample line parses.
func parseProm(t *testing.T, text string) (types map[string]string, samples map[string][]string) {
	t.Helper()
	types = make(map[string]string)
	samples = make(map[string][]string)
	var family string // family declared by the current HELP/TYPE block
	seen := make(map[string]bool)
	lines := strings.Split(text, "\n")
	if lines[len(lines)-1] != "" {
		t.Fatal("exposition does not end in newline")
	}
	lines = lines[:len(lines)-1]
	for i, ln := range lines {
		switch {
		case strings.HasPrefix(ln, "# HELP "):
			m := promHelpLine.FindStringSubmatch(ln)
			if m == nil {
				t.Fatalf("line %d: bad HELP line %q", i+1, ln)
			}
			if seen[m[1]] {
				t.Fatalf("line %d: family %s not contiguous (re-declared)", i+1, m[1])
			}
			seen[m[1]] = true
			family = m[1]
		case strings.HasPrefix(ln, "# TYPE "):
			m := promTypeLine.FindStringSubmatch(ln)
			if m == nil {
				t.Fatalf("line %d: bad TYPE line %q", i+1, ln)
			}
			if m[1] != family {
				t.Fatalf("line %d: TYPE %s does not follow its HELP (current family %s)", i+1, m[1], family)
			}
			types[m[1]] = m[2]
		case strings.HasPrefix(ln, "#"):
			t.Fatalf("line %d: unexpected comment %q", i+1, ln)
		default:
			m := promMetricLine.FindStringSubmatch(ln)
			if m == nil {
				t.Fatalf("line %d: unparsable sample %q", i+1, ln)
			}
			name := m[1]
			base := family
			// Summaries emit <family>_sum / <family>_count samples.
			if name != base && name != base+"_sum" && name != base+"_count" {
				t.Fatalf("line %d: sample %s outside family %s", i+1, name, base)
			}
			samples[family] = append(samples[family], ln)
		}
	}
	return types, samples
}

func buildPromRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("net.tx_pkts", L("port", "0")).Add(7)
	reg.Counter("net.tx_pkts", L("port", "1")).Add(9)
	g := reg.Gauge("switch.tm.occupancy_bytes", L("arch", "rmt"))
	g.Set(1500)
	g.Set(300)
	h := reg.Histogram("net.e2e_latency_ps", L("port", "0"))
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 1000)
	}
	reg.Set("exp.goodput_gbps", 96.5, L("exp", "baseline"))
	reg.ObserveFunc("switch.pending_pkts", func() float64 { return 3 })
	return reg
}

func TestPrometheusExposition(t *testing.T) {
	reg := buildPromRegistry()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	types, samples := parseProm(t, buf.String())

	wantTypes := map[string]string{
		"adcp_net_tx_pkts":                    "counter",
		"adcp_switch_tm_occupancy_bytes":      "gauge",
		"adcp_switch_tm_occupancy_bytes_peak": "gauge",
		"adcp_net_e2e_latency_ps":             "summary",
		"adcp_exp_goodput_gbps":               "gauge",
		"adcp_switch_pending_pkts":            "gauge",
	}
	for fam, typ := range wantTypes {
		if types[fam] != typ {
			t.Errorf("family %s TYPE = %q, want %q", fam, types[fam], typ)
		}
	}

	if n := len(samples["adcp_net_tx_pkts"]); n != 2 {
		t.Errorf("counter family has %d samples, want 2 (one per port)", n)
	}
	// Summary: 3 quantiles + _sum + _count.
	if n := len(samples["adcp_net_e2e_latency_ps"]); n != 5 {
		t.Errorf("summary family has %d samples, want 5: %v", n, samples["adcp_net_e2e_latency_ps"])
	}
	var hasQ, hasSum, hasCount bool
	for _, ln := range samples["adcp_net_e2e_latency_ps"] {
		if strings.Contains(ln, `quantile="0.5"`) {
			hasQ = true
		}
		if strings.HasPrefix(ln, "adcp_net_e2e_latency_ps_sum") {
			hasSum = true
		}
		if strings.HasPrefix(ln, "adcp_net_e2e_latency_ps_count{port=\"0\"} 100") {
			hasCount = true
		}
	}
	if !hasQ || !hasSum || !hasCount {
		t.Errorf("summary missing quantile/sum/count: %v", samples["adcp_net_e2e_latency_ps"])
	}
	// Gauge peak reflects the high-water mark, not the final value.
	peak := samples["adcp_switch_tm_occupancy_bytes_peak"]
	if len(peak) != 1 || !strings.HasSuffix(peak[0], " 1500") {
		t.Errorf("peak family = %v, want one sample of 1500", peak)
	}
	cur := samples["adcp_switch_tm_occupancy_bytes"]
	if len(cur) != 1 || !strings.HasSuffix(cur[0], " 300") {
		t.Errorf("gauge family = %v, want one sample of 300", cur)
	}
}

func TestPrometheusDeterministicOrdering(t *testing.T) {
	render := func() string {
		var buf bytes.Buffer
		if err := buildPromRegistry().WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Error("exposition differs between identical registries")
	}
	// Port labels within one family must appear sorted.
	i0 := strings.Index(a, `adcp_net_tx_pkts{port="0"}`)
	i1 := strings.Index(a, `adcp_net_tx_pkts{port="1"}`)
	if i0 < 0 || i1 < 0 || i0 > i1 {
		t.Errorf("per-label ordering wrong: port=0 at %d, port=1 at %d", i0, i1)
	}
}

func TestPrometheusLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("weird.series", L("path", `C:\dir`), L("quote", `say "hi"`), L("nl", "a\nb")).Inc()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`path="C:\\dir"`, `quote="say \"hi\""`, `nl="a\nb"`} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing escaped label %s in:\n%s", want, out)
		}
	}
	if strings.Count(out, "\n") != 3 {
		t.Errorf("escaped newline leaked into output:\n%q", out)
	}
	// The whole thing must still parse.
	parseProm(t, out)
}

func TestPrometheusNameMangling(t *testing.T) {
	for in, want := range map[string]string{
		"net.e2e_latency_ps": "adcp_net_e2e_latency_ps",
		"a-b c":              "adcp_a_b_c",
		"9lives":             "adcp_9lives",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
	if got := promLabelName("0day"); got != "_day" {
		t.Errorf("promLabelName(0day) = %q", got)
	}
}
