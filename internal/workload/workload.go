// Package workload generates the synthetic traffic of the paper's Table 1
// application patterns. No public traces of these workloads exist (and the
// paper uses none), so generators are parameterized by the communication
// *shape* the paper describes: all-to-all weight exchange (ML),
// filter-aggregate-reshuffle (DB analytics), BSP supersteps (graph pattern
// mining), and switch-initiated group transfer. All generators are
// deterministic for a given seed.
package workload

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/sim"
)

// Injection is one packet to send: host src transmits Pkt at time At.
type Injection struct {
	Src int
	Pkt *packet.Packet
	At  sim.Time
}

// MLParams sizes an all-to-all parameter-aggregation round.
type MLParams struct {
	CoflowID  uint32
	Workers   int
	ModelSize int // total weights in the model
	// ValuesPerPacket is the array width senders use (1 = scalar packets,
	// the RMT-restructured format; 16 = full ADCP arrays).
	ValuesPerPacket int
	// Gap is the inter-packet spacing per worker.
	Gap sim.Time
	// Seed drives the synthetic weight values.
	Seed uint64
}

// Validate checks the parameters.
func (p MLParams) Validate() error {
	if p.Workers <= 0 || p.ModelSize <= 0 || p.ValuesPerPacket <= 0 {
		return fmt.Errorf("workload: bad ML params %+v", p)
	}
	return nil
}

// ML generates one aggregation round: every worker sends the full model,
// chunked into ValuesPerPacket-wide packets. Weight w of worker k has value
// derived from (seed, k, w) so tests can recompute expected sums.
func ML(p MLParams) ([]Injection, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var injs []Injection
	for w := 0; w < p.Workers; w++ {
		t := sim.Time(0)
		for base := 0; base < p.ModelSize; base += p.ValuesPerPacket {
			n := p.ValuesPerPacket
			if base+n > p.ModelSize {
				n = p.ModelSize - base
			}
			vals := make([]uint32, n)
			for i := range vals {
				vals[i] = MLWeight(p.Seed, w, base+i)
			}
			flags := uint8(0)
			if base+n >= p.ModelSize {
				flags = packet.FlagLast
			}
			pkt := packet.Build(packet.Header{
				Proto:    packet.ProtoML,
				SrcPort:  uint16(w),
				CoflowID: p.CoflowID,
				FlowID:   uint32(w),
				Seq:      uint32(base),
				Flags:    flags,
			}, &packet.MLHeader{Base: uint32(base), Worker: uint16(w), Values: vals})
			injs = append(injs, Injection{Src: w, Pkt: pkt, At: t})
			t += p.Gap
		}
	}
	return injs, nil
}

// MLWeight is the deterministic synthetic weight of (seed, worker, index).
// Values stay small so sums across ≤2^16 workers cannot overflow uint32.
func MLWeight(seed uint64, worker, index int) uint32 {
	x := seed ^ uint64(worker)<<32 ^ uint64(index)
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	return uint32(x % 1000)
}

// MLExpectedSum returns the aggregated value of weight index across all
// workers — the ground truth the switch must reproduce.
func MLExpectedSum(seed uint64, workers, index int) uint32 {
	var sum uint32
	for w := 0; w < workers; w++ {
		sum += MLWeight(seed, w, index)
	}
	return sum
}

// KVParams sizes a key/value cache workload.
type KVParams struct {
	CoflowID      uint32
	Clients       int
	OpsPerClient  int
	KeysPerPacket int
	KeySpace      uint32 // keys drawn from [0, KeySpace)
	PutFraction   float64
	Gap           sim.Time
	Seed          uint64
}

// Validate checks the parameters.
func (p KVParams) Validate() error {
	if p.Clients <= 0 || p.OpsPerClient <= 0 || p.KeysPerPacket <= 0 || p.KeySpace == 0 {
		return fmt.Errorf("workload: bad KV params %+v", p)
	}
	if p.PutFraction < 0 || p.PutFraction > 1 {
		return fmt.Errorf("workload: put fraction %v", p.PutFraction)
	}
	return nil
}

// KV generates batched cache operations: each client sends OpsPerClient
// packets of KeysPerPacket uniformly drawn keys.
func KV(p KVParams) ([]Injection, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := sim.NewRNG(p.Seed)
	var injs []Injection
	for c := 0; c < p.Clients; c++ {
		t := sim.Time(0)
		for op := 0; op < p.OpsPerClient; op++ {
			pairs := make([]packet.KVPair, p.KeysPerPacket)
			for i := range pairs {
				pairs[i].Key = uint32(rng.Uint64()) % p.KeySpace
			}
			kvop := packet.KVGet
			if rng.Float64() < p.PutFraction {
				kvop = packet.KVPut
				for i := range pairs {
					pairs[i].Value = uint32(rng.Uint64())
				}
			}
			pkt := packet.Build(packet.Header{
				Proto:    packet.ProtoKV,
				SrcPort:  uint16(c),
				CoflowID: p.CoflowID,
				FlowID:   uint32(c),
				Seq:      uint32(op),
			}, &packet.KVHeader{Op: kvop, Pairs: pairs})
			injs = append(injs, Injection{Src: c, Pkt: pkt, At: t})
			t += p.Gap
		}
	}
	return injs, nil
}

// DBParams sizes a filter-aggregate-reshuffle query.
type DBParams struct {
	CoflowID        uint32
	Query           uint16
	Sources         int
	TuplesPerSource int
	TuplesPerPacket int
	KeySpace        uint32
	// Selectivity is the filter pass rate applied at the source.
	Selectivity float64
	Gap         sim.Time
	Seed        uint64
}

// Validate checks the parameters.
func (p DBParams) Validate() error {
	if p.Sources <= 0 || p.TuplesPerSource <= 0 || p.TuplesPerPacket <= 0 || p.KeySpace == 0 {
		return fmt.Errorf("workload: bad DB params %+v", p)
	}
	if p.Selectivity <= 0 || p.Selectivity > 1 {
		return fmt.Errorf("workload: selectivity %v", p.Selectivity)
	}
	return nil
}

// DB generates the scan output of each source: filtered tuples batched
// into packets, keyed uniformly, with measure 1 (so aggregated measures
// count tuples and tests can verify totals).
func DB(p DBParams) ([]Injection, int, error) {
	if err := p.Validate(); err != nil {
		return nil, 0, err
	}
	rng := sim.NewRNG(p.Seed)
	var injs []Injection
	total := 0
	for s := 0; s < p.Sources; s++ {
		t := sim.Time(0)
		var batch []packet.DBTuple
		flush := func(last bool) {
			if len(batch) == 0 {
				return
			}
			flags := uint8(0)
			if last {
				flags = packet.FlagLast
			}
			pkt := packet.Build(packet.Header{
				Proto:    packet.ProtoDB,
				SrcPort:  uint16(s),
				CoflowID: p.CoflowID,
				FlowID:   uint32(s),
				Flags:    flags,
			}, &packet.DBHeader{Query: p.Query, Stage: 0, Tuples: batch})
			injs = append(injs, Injection{Src: s, Pkt: pkt, At: t})
			t += p.Gap
			batch = nil
		}
		for i := 0; i < p.TuplesPerSource; i++ {
			if rng.Float64() >= p.Selectivity {
				continue // filtered out at the source
			}
			batch = append(batch, packet.DBTuple{
				Key:     uint32(rng.Uint64()) % p.KeySpace,
				Measure: 1,
			})
			total++
			if len(batch) == p.TuplesPerPacket {
				flush(i == p.TuplesPerSource-1)
			}
		}
		flush(true)
	}
	return injs, total, nil
}

// GraphParams sizes a BSP pattern-mining run.
type GraphParams struct {
	CoflowID       uint32
	Hosts          int
	Vertices       uint32
	EdgesPerHost   int
	EdgesPerPacket int
	Rounds         int
	Gap            sim.Time
	Seed           uint64
}

// Validate checks the parameters.
func (p GraphParams) Validate() error {
	if p.Hosts <= 0 || p.Vertices == 0 || p.EdgesPerHost <= 0 || p.EdgesPerPacket <= 0 || p.Rounds <= 0 {
		return fmt.Errorf("workload: bad graph params %+v", p)
	}
	return nil
}

// Graph generates BSP supersteps: in each round every host sends its batch
// of candidate edges (uniformly random endpoints). Rounds are separated in
// time so the barrier structure is visible in the arrival schedule.
func Graph(p GraphParams) ([]Injection, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := sim.NewRNG(p.Seed)
	var injs []Injection
	roundSpan := p.Gap * sim.Time(p.EdgesPerHost/p.EdgesPerPacket+2)
	for r := 0; r < p.Rounds; r++ {
		for h := 0; h < p.Hosts; h++ {
			t := sim.Time(r) * roundSpan
			for e := 0; e < p.EdgesPerHost; e += p.EdgesPerPacket {
				n := p.EdgesPerPacket
				if e+n > p.EdgesPerHost {
					n = p.EdgesPerHost - e
				}
				edges := make([]packet.Edge, n)
				for i := range edges {
					edges[i] = packet.Edge{
						Src: uint32(rng.Uint64()) % p.Vertices,
						Dst: uint32(rng.Uint64()) % p.Vertices,
					}
				}
				pkt := packet.Build(packet.Header{
					Proto:    packet.ProtoGraph,
					SrcPort:  uint16(h),
					CoflowID: p.CoflowID,
					FlowID:   uint32(h),
					Seq:      uint32(r),
				}, &packet.GraphHeader{Round: uint16(r), Edges: edges})
				injs = append(injs, Injection{Src: h, Pkt: pkt, At: t})
				t += p.Gap
			}
		}
	}
	return injs, nil
}

// GroupParams sizes a switch-initiated group transfer.
type GroupParams struct {
	CoflowID uint32
	GroupID  uint32
	Source   int
	Chunks   int
	ChunkLen int
	Gap      sim.Time
}

// Validate checks the parameters.
func (p GroupParams) Validate() error {
	if p.Chunks <= 0 || p.ChunkLen <= 0 || p.Source < 0 {
		return fmt.Errorf("workload: bad group params %+v", p)
	}
	return nil
}

// Group generates the source's chunk stream; the switch replicates each
// chunk to the group (done by the app program, not the generator).
func Group(p GroupParams) ([]Injection, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var injs []Injection
	t := sim.Time(0)
	for c := 0; c < p.Chunks; c++ {
		payload := make([]byte, p.ChunkLen)
		for i := range payload {
			payload[i] = byte(c + i)
		}
		flags := uint8(0)
		if c == p.Chunks-1 {
			flags = packet.FlagLast
		}
		pkt := packet.Build(packet.Header{
			Proto:    packet.ProtoGroup,
			SrcPort:  uint16(p.Source),
			CoflowID: p.CoflowID,
			Flags:    flags,
		}, &packet.GroupHeader{GroupID: p.GroupID, Chunk: uint32(c), Total: uint32(p.Chunks), Payload: payload})
		injs = append(injs, Injection{Src: p.Source, Pkt: pkt, At: t})
		t += p.Gap
	}
	return injs, nil
}
