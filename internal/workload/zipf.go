package workload

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
)

// Zipf draws keys from a bounded Zipf(s) distribution via a precomputed
// inverse CDF — the standard skew model for cache workloads (NetCache
// evaluates under Zipf 0.9–1.2). Deterministic for a given RNG.
type Zipf struct {
	rng *sim.RNG
	cdf []float64
}

// NewZipf builds a sampler over keys [0, n) with skew s ≥ 0 (s = 0 is
// uniform; s ≈ 1 is the classic web/cache skew).
func NewZipf(rng *sim.RNG, s float64, n int) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: zipf over %d keys", n)
	}
	if s < 0 {
		return nil, fmt.Errorf("workload: negative skew %v", s)
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1.0 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{rng: rng, cdf: cdf}, nil
}

// Sample returns the next key: rank i has probability ∝ 1/(i+1)^s.
func (z *Zipf) Sample() uint32 {
	u := z.rng.Float64()
	return uint32(sort.SearchFloat64s(z.cdf, u))
}

// KVZipf generates the KV workload with Zipf-skewed keys instead of
// uniform ones. The skewed head is what makes small on-switch caches
// effective (the NetCache argument): a few hot keys absorb most GETs.
func KVZipf(p KVParams, skew float64) ([]Injection, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := sim.NewRNG(p.Seed)
	z, err := NewZipf(rng, skew, int(p.KeySpace))
	if err != nil {
		return nil, err
	}
	injs, err := KV(p) // reuse structure: same packet count and shape
	if err != nil {
		return nil, err
	}
	// Rewrite the keys in place with Zipf draws (values untouched).
	for _, inj := range injs {
		data := inj.Pkt.Data
		// Pairs start after base header + KV fixed header; each pair is
		// key(4) + value(4).
		off := 20 + 4
		for off+8 <= len(data) {
			k := z.Sample()
			data[off] = byte(k >> 24)
			data[off+1] = byte(k >> 16)
			data[off+2] = byte(k >> 8)
			data[off+3] = byte(k)
			off += 8
		}
	}
	return injs, nil
}
