package workload

import (
	"testing"
	"testing/quick"

	"repro/internal/packet"
	"repro/internal/sim"
)

func TestMLGeneratesFullModel(t *testing.T) {
	p := MLParams{CoflowID: 1, Workers: 4, ModelSize: 100, ValuesPerPacket: 16, Seed: 7}
	injs, err := ML(p)
	if err != nil {
		t.Fatal(err)
	}
	// ceil(100/16) = 7 packets per worker.
	if len(injs) != 4*7 {
		t.Fatalf("%d injections, want 28", len(injs))
	}
	// Verify coverage and values per worker.
	seen := make(map[int]map[int]uint32) // worker → index → value
	lasts := 0
	for _, inj := range injs {
		var d packet.Decoded
		if err := d.DecodePacket(inj.Pkt); err != nil {
			t.Fatal(err)
		}
		if d.Base.Proto != packet.ProtoML || d.Base.CoflowID != 1 {
			t.Fatal("bad header")
		}
		w := int(d.ML.Worker)
		if seen[w] == nil {
			seen[w] = make(map[int]uint32)
		}
		for i, v := range d.ML.Values {
			seen[w][int(d.ML.Base)+i] = v
		}
		if d.Base.Flags&packet.FlagLast != 0 {
			lasts++
		}
	}
	if lasts != 4 {
		t.Errorf("FlagLast on %d packets, want 4 (one per worker)", lasts)
	}
	for w := 0; w < 4; w++ {
		if len(seen[w]) != 100 {
			t.Fatalf("worker %d covered %d weights", w, len(seen[w]))
		}
		for idx, v := range seen[w] {
			if v != MLWeight(7, w, idx) {
				t.Fatalf("worker %d weight %d = %d, want %d", w, idx, v, MLWeight(7, w, idx))
			}
		}
	}
}

func TestMLExpectedSum(t *testing.T) {
	var sum uint32
	for w := 0; w < 5; w++ {
		sum += MLWeight(3, w, 42)
	}
	if got := MLExpectedSum(3, 5, 42); got != sum {
		t.Errorf("MLExpectedSum = %d, want %d", got, sum)
	}
}

func TestMLScalarVsArrayPacketCounts(t *testing.T) {
	scalar, _ := ML(MLParams{CoflowID: 1, Workers: 1, ModelSize: 64, ValuesPerPacket: 1})
	wide, _ := ML(MLParams{CoflowID: 1, Workers: 1, ModelSize: 64, ValuesPerPacket: 16})
	if len(scalar) != 64 || len(wide) != 4 {
		t.Errorf("scalar=%d wide=%d, want 64/4 (the §3.2 16× packet count gap)", len(scalar), len(wide))
	}
}

func TestMLValidation(t *testing.T) {
	if _, err := ML(MLParams{Workers: 0, ModelSize: 1, ValuesPerPacket: 1}); err == nil {
		t.Error("bad params accepted")
	}
}

func TestKVDeterministicAndBounded(t *testing.T) {
	p := KVParams{CoflowID: 2, Clients: 3, OpsPerClient: 10, KeysPerPacket: 8, KeySpace: 100, PutFraction: 0.3, Seed: 9}
	a, err := KV(p)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := KV(p)
	if len(a) != 30 || len(b) != 30 {
		t.Fatalf("lengths %d/%d", len(a), len(b))
	}
	puts := 0
	for i := range a {
		if string(a[i].Pkt.Data) != string(b[i].Pkt.Data) {
			t.Fatal("KV not deterministic")
		}
		var d packet.Decoded
		if err := d.DecodePacket(a[i].Pkt); err != nil {
			t.Fatal(err)
		}
		if len(d.KV.Pairs) != 8 {
			t.Fatalf("pairs = %d", len(d.KV.Pairs))
		}
		for _, pr := range d.KV.Pairs {
			if pr.Key >= 100 {
				t.Fatalf("key %d out of keyspace", pr.Key)
			}
		}
		if d.KV.Op == packet.KVPut {
			puts++
		}
	}
	if puts == 0 || puts == 30 {
		t.Errorf("puts = %d of 30, want a mix near 30%%", puts)
	}
}

func TestKVValidation(t *testing.T) {
	bad := []KVParams{
		{Clients: 0, OpsPerClient: 1, KeysPerPacket: 1, KeySpace: 1},
		{Clients: 1, OpsPerClient: 1, KeysPerPacket: 1, KeySpace: 0},
		{Clients: 1, OpsPerClient: 1, KeysPerPacket: 1, KeySpace: 1, PutFraction: 1.5},
	}
	for i, p := range bad {
		if _, err := KV(p); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestDBSelectivityAndTotals(t *testing.T) {
	p := DBParams{CoflowID: 3, Query: 1, Sources: 4, TuplesPerSource: 1000, TuplesPerPacket: 16, KeySpace: 64, Selectivity: 0.5, Seed: 11}
	injs, total, err := DB(p)
	if err != nil {
		t.Fatal(err)
	}
	// ≈50% of 4000 tuples survive the filter.
	if total < 1800 || total > 2200 {
		t.Errorf("filtered total = %d, want ≈2000", total)
	}
	counted := 0
	lasts := 0
	for _, inj := range injs {
		var d packet.Decoded
		if err := d.DecodePacket(inj.Pkt); err != nil {
			t.Fatal(err)
		}
		counted += len(d.DB.Tuples)
		for _, tp := range d.DB.Tuples {
			if tp.Measure != 1 || tp.Key >= 64 {
				t.Fatal("bad tuple")
			}
		}
		if d.Base.Flags&packet.FlagLast != 0 {
			lasts++
		}
	}
	if counted != total {
		t.Errorf("tuples in packets %d != reported total %d", counted, total)
	}
	if lasts != 4 {
		t.Errorf("lasts = %d, want 4", lasts)
	}
	if _, _, err := DB(DBParams{Sources: 1, TuplesPerSource: 1, TuplesPerPacket: 1, KeySpace: 1, Selectivity: 0}); err == nil {
		t.Error("zero selectivity accepted")
	}
}

func TestGraphRoundsStructure(t *testing.T) {
	p := GraphParams{CoflowID: 4, Hosts: 2, Vertices: 50, EdgesPerHost: 20, EdgesPerPacket: 8, Rounds: 3, Gap: 1000, Seed: 5}
	injs, err := Graph(p)
	if err != nil {
		t.Fatal(err)
	}
	// ceil(20/8)=3 packets × 2 hosts × 3 rounds.
	if len(injs) != 18 {
		t.Fatalf("%d injections, want 18", len(injs))
	}
	rounds := map[uint16]int{}
	for _, inj := range injs {
		var d packet.Decoded
		if err := d.DecodePacket(inj.Pkt); err != nil {
			t.Fatal(err)
		}
		rounds[d.Graph.Round] += len(d.Graph.Edges)
		for _, e := range d.Graph.Edges {
			if e.Src >= 50 || e.Dst >= 50 {
				t.Fatal("vertex out of range")
			}
		}
	}
	for r := uint16(0); r < 3; r++ {
		if rounds[r] != 40 {
			t.Errorf("round %d edges = %d, want 40", r, rounds[r])
		}
	}
	if _, err := Graph(GraphParams{Hosts: 0, Vertices: 1, EdgesPerHost: 1, EdgesPerPacket: 1, Rounds: 1}); err == nil {
		t.Error("bad params accepted")
	}
}

func TestGroupChunks(t *testing.T) {
	p := GroupParams{CoflowID: 5, GroupID: 9, Source: 2, Chunks: 5, ChunkLen: 64, Gap: 100}
	injs, err := Group(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(injs) != 5 {
		t.Fatalf("%d injections", len(injs))
	}
	for i, inj := range injs {
		if inj.Src != 2 {
			t.Error("wrong source")
		}
		var d packet.Decoded
		if err := d.DecodePacket(inj.Pkt); err != nil {
			t.Fatal(err)
		}
		if d.Group.Chunk != uint32(i) || d.Group.Total != 5 || len(d.Group.Payload) != 64 {
			t.Fatalf("chunk %d header %+v", i, d.Group)
		}
	}
	if _, err := Group(GroupParams{Chunks: 0, ChunkLen: 1}); err == nil {
		t.Error("bad params accepted")
	}
}

// Property: ML weight coverage — for any model size and width, each worker
// sends exactly ModelSize distinct weight indexes.
func TestMLCoverageProperty(t *testing.T) {
	f := func(sizeRaw, widthRaw uint8) bool {
		size := int(sizeRaw)%200 + 1
		width := int(widthRaw)%16 + 1
		injs, err := ML(MLParams{CoflowID: 1, Workers: 1, ModelSize: size, ValuesPerPacket: width, Seed: 1})
		if err != nil {
			return false
		}
		covered := make(map[int]bool)
		for _, inj := range injs {
			var d packet.Decoded
			if err := d.DecodePacket(inj.Pkt); err != nil {
				return false
			}
			for i := range d.ML.Values {
				covered[int(d.ML.Base)+i] = true
			}
		}
		return len(covered) == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestZipfSkewConcentratesMass(t *testing.T) {
	rng := sim.NewRNG(7)
	z, err := NewZipf(rng, 1.0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 1000)
	const n = 100000
	for i := 0; i < n; i++ {
		k := z.Sample()
		if int(k) >= 1000 {
			t.Fatalf("sample %d out of keyspace", k)
		}
		counts[k]++
	}
	// Zipf(1) over 1000 keys: rank 0 has p ≈ 1/H(1000) ≈ 0.134; the top
	// 10 keys together ≈ 39%.
	if counts[0] < n/10 {
		t.Errorf("hottest key drew %d of %d, want ≥10%%", counts[0], n)
	}
	top10 := 0
	for i := 0; i < 10; i++ {
		top10 += counts[i]
	}
	if top10 < n/3 {
		t.Errorf("top-10 keys drew %d of %d, want ≥33%%", top10, n)
	}
	// Rank ordering holds in aggregate for the head.
	if counts[0] < counts[9] {
		t.Error("rank 0 colder than rank 9")
	}
}

func TestZipfZeroSkewIsUniform(t *testing.T) {
	rng := sim.NewRNG(9)
	z, err := NewZipf(rng, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 16)
	const n = 64000
	for i := 0; i < n; i++ {
		counts[z.Sample()]++
	}
	for k, c := range counts {
		if c < n/16-n/32 || c > n/16+n/32 {
			t.Errorf("key %d drew %d, want ≈%d (uniform)", k, c, n/16)
		}
	}
}

func TestZipfValidation(t *testing.T) {
	rng := sim.NewRNG(1)
	if _, err := NewZipf(rng, 1, 0); err == nil {
		t.Error("zero keyspace accepted")
	}
	if _, err := NewZipf(rng, -1, 10); err == nil {
		t.Error("negative skew accepted")
	}
}

func TestKVZipfRewritesKeysInKeyspace(t *testing.T) {
	p := KVParams{CoflowID: 1, Clients: 2, OpsPerClient: 50, KeysPerPacket: 8, KeySpace: 64, Seed: 3}
	injs, err := KVZipf(p, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[uint32]int{}
	total := 0
	for _, inj := range injs {
		var d packet.Decoded
		if err := d.DecodePacket(inj.Pkt); err != nil {
			t.Fatal(err)
		}
		for _, pr := range d.KV.Pairs {
			if pr.Key >= 64 {
				t.Fatalf("key %d out of keyspace", pr.Key)
			}
			counts[pr.Key]++
			total++
		}
	}
	if total != 2*50*8 {
		t.Fatalf("total keys = %d", total)
	}
	// Skew visible: hottest key well above uniform share.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 3*total/64 {
		t.Errorf("hottest key drew %d of %d — no skew visible", max, total)
	}
	if _, err := KVZipf(KVParams{}, 1); err == nil {
		t.Error("bad params accepted")
	}
}
