package program

import (
	"testing"

	"repro/internal/mat"
	"repro/internal/packet"
	"repro/internal/phv"
	"repro/internal/pipeline"
)

func buildPipeline(t *testing.T, cfg pipeline.Config) *pipeline.Pipeline {
	t.Helper()
	p, err := pipeline.New(cfg, packet.StandardGraph(), pipeline.StandardLayout(cfg.PHVBudget))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBindScalarWithReplication(t *testing.T) {
	spec := &Spec{
		Name: "bound",
		Tables: []TableSpec{
			{Name: "cache", Kind: MatchExact, Entries: 1024, KeysPerPacket: 4},
		},
		Registers: []RegisterSpec{{Name: "hits", Cells: 128}},
		Deps:      [][2]string{{"cache", "hits"}},
	}
	pl, err := Compile(spec, RMTTarget())
	if err != nil {
		t.Fatal(err)
	}
	pipe := buildPipeline(t, pipeline.DefaultRMTConfig())
	b, err := Bind(pl, pipe)
	if err != nil {
		t.Fatal(err)
	}
	h := b.Tables["cache"]
	if h == nil || h.Replication != 4 {
		t.Fatalf("handle %+v", h)
	}
	// The stage memory was reconfigured for 4-way replication.
	if got := pipe.Stage(h.Stage).Mem.Parallelism(); got != 4 {
		t.Errorf("stage parallelism = %d", got)
	}
	// Install through the handle, batch-match 4 keys in one traversal.
	for k := uint64(1); k <= 4; k++ {
		if err := h.Install(k, mat.Result{ActionID: int(k)}); err != nil {
			t.Fatal(err)
		}
	}
	if h.Installed() != 4 {
		t.Errorf("Installed = %d", h.Installed())
	}
	results := make([]mat.Result, 4)
	hits := make([]bool, 4)
	cyc, err := h.LookupBatch([]uint64{1, 2, 3, 4}, results, hits)
	if err != nil || cyc != 1 {
		t.Fatalf("batch: %d %v", cyc, err)
	}
	for i := range hits {
		if !hits[i] || results[i].ActionID != i+1 {
			t.Errorf("key %d missed", i+1)
		}
	}
	// Register handle works and lives strictly after the table's stage.
	r := b.Registers["hits"]
	if r == nil || r.Stage <= h.Stage {
		t.Fatalf("register handle %+v vs table stage %d", r, h.Stage)
	}
	r.Execute(mat.RegAdd, 0, 7)
	if r.Peek(0) != 7 {
		t.Error("register write lost")
	}
}

func TestBindADCPNoReconfiguration(t *testing.T) {
	spec := &Spec{
		Name:   "adcpbound",
		Tables: []TableSpec{{Name: "t", Kind: MatchExact, Entries: 512, KeysPerPacket: 16}},
	}
	pl, err := Compile(spec, ADCPTarget())
	if err != nil {
		t.Fatal(err)
	}
	pipe := buildPipeline(t, pipeline.DefaultADCPConfig())
	b, err := Bind(pl, pipe)
	if err != nil {
		t.Fatal(err)
	}
	h := b.Tables["t"]
	if h.Replication != 1 {
		t.Errorf("ADCP replication = %d", h.Replication)
	}
	if pipe.Stage(h.Stage).Mem.Parallelism() != 16 {
		t.Error("array parallelism lost")
	}
}

func TestBindTooFewStages(t *testing.T) {
	spec := &Spec{Name: "deep"}
	var prev string
	for i := 0; i < 6; i++ {
		n := string(rune('a' + i))
		spec.Tables = append(spec.Tables, TableSpec{Name: n, Kind: MatchExact, Entries: 8, KeysPerPacket: 1})
		if prev != "" {
			spec.Deps = append(spec.Deps, [2]string{prev, n})
		}
		prev = n
	}
	pl, err := Compile(spec, RMTTarget())
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipeline.DefaultRMTConfig()
	cfg.Stages = 4 // fewer than the placement needs
	pipe := buildPipeline(t, cfg)
	if _, err := Bind(pl, pipe); err == nil {
		t.Error("placement bound to a too-short pipeline")
	}
}

func TestBindConflictingReplicationInStage(t *testing.T) {
	// Force two tables with different k into one stage by hand-crafting a
	// placement (the compiler may or may not produce one; Bind must
	// reject it regardless).
	pl := &Placement{
		Tables: map[string]TablePlacement{
			"a": {Stage: 0, Replication: 2, SRAMEntries: 16},
			"b": {Stage: 0, Replication: 4, SRAMEntries: 16},
		},
		Registers:  map[string]int{},
		StagesUsed: 1,
		Layout:     phv.NewLayout(phv.DefaultBudget),
	}
	pipe := buildPipeline(t, pipeline.DefaultRMTConfig())
	if _, err := Bind(pl, pipe); err == nil {
		t.Error("conflicting per-stage replication accepted")
	}
}
