// Package program defines a small P4-like intermediate representation for
// switch programs — field, table, and register declarations plus ordering
// dependencies — and a resource compiler that places a program onto a
// target architecture (RMT or ADCP).
//
// The compiler is where the paper's qualitative statements become numbers:
// placing a program that matches k keys per packet onto an RMT target
// reports the table replication factor (Figure 3), the recirculation passes
// needed when k exceeds what a stage can replicate, and the PHV pressure;
// the same program placed onto an ADCP target uses array matching and
// reports none of those costs.
package program

import (
	"fmt"
	"sort"

	"repro/internal/phv"
)

// MatchKind is the match discipline of a declared table.
type MatchKind int

// Match kinds.
const (
	MatchExact MatchKind = iota
	MatchLPM
	MatchTernary
)

// String returns the kind mnemonic.
func (k MatchKind) String() string {
	switch k {
	case MatchExact:
		return "exact"
	case MatchLPM:
		return "lpm"
	case MatchTernary:
		return "ternary"
	default:
		return fmt.Sprintf("match(%d)", int(k))
	}
}

// FieldSpec declares a PHV field the program needs.
type FieldSpec struct {
	Name  string
	Width phv.Width
	Array bool // needs an array container (ADCP only)
}

// TableSpec declares a logical match-action table.
type TableSpec struct {
	Name    string
	Kind    MatchKind
	Entries int // logical entries the application needs installed
	// KeysPerPacket is how many data elements of one packet must be
	// matched against this table (1 = classic scalar table).
	KeysPerPacket int
}

// RegisterSpec declares stateful register cells.
type RegisterSpec struct {
	Name  string
	Cells int
}

// Spec is a complete switch program declaration.
type Spec struct {
	Name      string
	Fields    []FieldSpec
	Tables    []TableSpec
	Registers []RegisterSpec
	// Deps lists ordering constraints: Deps[i] = [a, b] forces table or
	// register a to be placed in a strictly earlier stage than b.
	Deps [][2]string
}

// Validate checks internal consistency.
func (s *Spec) Validate() error {
	names := make(map[string]bool)
	for _, f := range s.Fields {
		if f.Name == "" {
			return fmt.Errorf("program %q: unnamed field", s.Name)
		}
	}
	add := func(n string) error {
		if n == "" {
			return fmt.Errorf("program %q: unnamed resource", s.Name)
		}
		if names[n] {
			return fmt.Errorf("program %q: duplicate resource %q", s.Name, n)
		}
		names[n] = true
		return nil
	}
	for _, t := range s.Tables {
		if err := add(t.Name); err != nil {
			return err
		}
		if t.Entries <= 0 {
			return fmt.Errorf("program %q: table %q has %d entries", s.Name, t.Name, t.Entries)
		}
		if t.KeysPerPacket < 1 {
			return fmt.Errorf("program %q: table %q matches %d keys", s.Name, t.Name, t.KeysPerPacket)
		}
	}
	for _, r := range s.Registers {
		if err := add(r.Name); err != nil {
			return err
		}
		if r.Cells <= 0 {
			return fmt.Errorf("program %q: register %q has %d cells", s.Name, r.Name, r.Cells)
		}
	}
	for _, d := range s.Deps {
		for _, n := range []string{d[0], d[1]} {
			if !names[n] {
				return fmt.Errorf("program %q: dependency references unknown %q", s.Name, n)
			}
		}
		if d[0] == d[1] {
			return fmt.Errorf("program %q: self-dependency on %q", s.Name, d[0])
		}
	}
	return nil
}

// Target describes the architecture a program is placed onto.
type Target struct {
	Name             string
	Stages           int
	MAUsPerStage     int
	EntriesPerStage  int
	RegisterCells    int // per stage
	ArrayWidth       int // 0 = scalar only (RMT)
	PHVBudget        phv.Budget
	AllowRecirculate bool
}

// RMTTarget returns a Tofino-class RMT target.
func RMTTarget() Target {
	return Target{
		Name:             "rmt",
		Stages:           12,
		MAUsPerStage:     16,
		EntriesPerStage:  64 * 1024,
		RegisterCells:    4 * 1024,
		ArrayWidth:       0,
		PHVBudget:        phv.DefaultBudget,
		AllowRecirculate: true,
	}
}

// ADCPTarget returns the ADCP central-pipeline target: same geometry, array
// matching up to the stage's MAU count, no recirculation (none needed).
func ADCPTarget() Target {
	return Target{
		Name:            "adcp",
		Stages:          12,
		MAUsPerStage:    16,
		EntriesPerStage: 64 * 1024,
		RegisterCells:   4 * 1024,
		ArrayWidth:      16,
		PHVBudget:       phv.ADCPBudget,
	}
}

// TablePlacement records where one table landed and what it cost.
type TablePlacement struct {
	Stage       int
	Replication int // SRAM copies (scalar targets with multi-key matching)
	SRAMEntries int // total entries consumed (Entries × Replication)
	Passes      int // pipeline traversals to cover all keys of one packet
}

// Placement is the compiled resource assignment of a program on a target.
type Placement struct {
	Program string
	Target  string
	// Tables maps table name → placement.
	Tables map[string]TablePlacement
	// Registers maps register name → stage.
	Registers map[string]int
	// StagesUsed is the highest occupied stage + 1.
	StagesUsed int
	// PHVBitsUsed is the scalar PHV pressure.
	PHVBitsUsed int
	// ArraySlotsUsed counts array containers consumed.
	ArraySlotsUsed int
	// MaxPasses is the worst-case traversals one packet needs (1 = single
	// pass; >1 means recirculation on RMT).
	MaxPasses int
	// RecirculationOverhead = (MaxPasses-1)/MaxPasses: fraction of
	// pipeline bandwidth burned by extra passes.
	RecirculationOverhead float64
	// Layout is the PHV layout built during placement, usable to
	// instantiate pipelines.
	Layout *phv.Layout
}

// ErrInfeasible wraps placement failures with the reason.
type ErrInfeasible struct {
	Program string
	Target  string
	Reason  string
}

// Error implements error.
func (e *ErrInfeasible) Error() string {
	return fmt.Sprintf("program %q infeasible on %s: %s", e.Program, e.Target, e.Reason)
}

// Compile places spec onto target, returning the placement or an
// *ErrInfeasible explaining what does not fit.
func Compile(spec *Spec, target Target) (*Placement, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	infeasible := func(format string, args ...any) error {
		return &ErrInfeasible{Program: spec.Name, Target: target.Name, Reason: fmt.Sprintf(format, args...)}
	}

	// PHV allocation.
	layout := phv.NewLayout(target.PHVBudget)
	arraySlots := 0
	for _, f := range spec.Fields {
		if f.Array {
			if _, err := layout.AllocArray(f.Name); err != nil {
				return nil, infeasible("array field %q: %v (scalar-only PHV — restructure per Figure 3 or choose ADCP)", f.Name, err)
			}
			arraySlots++
			continue
		}
		if _, err := layout.Alloc(f.Name, f.Width); err != nil {
			return nil, infeasible("field %q: %v", f.Name, err)
		}
	}

	// Stage ordering: longest-path levels from the dependency DAG.
	level, err := dagLevels(spec)
	if err != nil {
		return nil, infeasible("%v", err)
	}

	pl := &Placement{
		Program:   spec.Name,
		Target:    target.Name,
		Tables:    make(map[string]TablePlacement),
		Registers: make(map[string]int),
		MaxPasses: 1,
		Layout:    layout,
	}

	// Per-stage budgets.
	sramLeft := make([]int, target.Stages)
	regLeft := make([]int, target.Stages)
	for i := range sramLeft {
		sramLeft[i] = target.EntriesPerStage
		regLeft[i] = target.RegisterCells
	}

	// Place tables in level order, then registers. Sort names within a
	// level for determinism.
	type item struct {
		name  string
		level int
		table *TableSpec
		reg   *RegisterSpec
	}
	var items []item
	for i := range spec.Tables {
		t := &spec.Tables[i]
		items = append(items, item{name: t.Name, level: level[t.Name], table: t})
	}
	for i := range spec.Registers {
		r := &spec.Registers[i]
		items = append(items, item{name: r.Name, level: level[r.Name], reg: r})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].level != items[j].level {
			return items[i].level < items[j].level
		}
		return items[i].name < items[j].name
	})

	// preds[b] lists resources that must be placed strictly before b; a
	// dependent's earliest stage follows its predecessors' PLACED stages
	// (SRAM pressure may have pushed them past their DAG level).
	preds := make(map[string][]string)
	for _, d := range spec.Deps {
		preds[d[1]] = append(preds[d[1]], d[0])
	}
	placedStage := make(map[string]int)

	for _, it := range items {
		minStage := it.level
		for _, pred := range preds[it.name] {
			if s, ok := placedStage[pred]; ok && s+1 > minStage {
				minStage = s + 1
			}
		}
		if minStage >= target.Stages {
			return nil, infeasible("%q needs stage ≥ %d of %d (dependency chain too long)", it.name, minStage, target.Stages)
		}
		if it.table != nil {
			tp, stage, err := placeTable(it.table, target, sramLeft, minStage)
			if err != nil {
				return nil, infeasible("%v", err)
			}
			tp.Stage = stage
			pl.Tables[it.name] = tp
			placedStage[it.name] = stage
			if tp.Passes > pl.MaxPasses {
				pl.MaxPasses = tp.Passes
			}
			if stage+1 > pl.StagesUsed {
				pl.StagesUsed = stage + 1
			}
			continue
		}
		placed := false
		for s := minStage; s < target.Stages; s++ {
			if regLeft[s] >= it.reg.Cells {
				regLeft[s] -= it.reg.Cells
				pl.Registers[it.name] = s
				placedStage[it.name] = s
				if s+1 > pl.StagesUsed {
					pl.StagesUsed = s + 1
				}
				placed = true
				break
			}
		}
		if !placed {
			return nil, infeasible("register %q (%d cells) does not fit in any stage", it.name, it.reg.Cells)
		}
	}

	if pl.MaxPasses > 1 && !target.AllowRecirculate {
		return nil, infeasible("needs %d passes but target has no recirculation", pl.MaxPasses)
	}
	pl.PHVBitsUsed = layout.UsedBits()
	pl.ArraySlotsUsed = arraySlots
	pl.RecirculationOverhead = float64(pl.MaxPasses-1) / float64(pl.MaxPasses)
	return pl, nil
}

// placeTable finds a stage for the table and computes its replication and
// pass count on the target.
func placeTable(t *TableSpec, target Target, sramLeft []int, minStage int) (TablePlacement, int, error) {
	k := t.KeysPerPacket
	var replication, passes int
	if target.ArrayWidth > 0 {
		// ADCP §3.2: one shared table, k ≤ ArrayWidth keys per traversal.
		replication = 1
		passes = (k + target.ArrayWidth - 1) / target.ArrayWidth
	} else {
		// RMT Figure 3: k keys need k copies, bounded by the MAU count;
		// keys beyond the replication need extra passes.
		replication = k
		if replication > target.MAUsPerStage {
			replication = target.MAUsPerStage
		}
		passes = (k + replication - 1) / replication
	}
	need := t.Entries * replication
	for s := minStage; s < len(sramLeft); s++ {
		if sramLeft[s] >= need {
			sramLeft[s] -= need
			return TablePlacement{Replication: replication, SRAMEntries: need, Passes: passes}, s, nil
		}
	}
	// Retry with reduced replication (more passes) on scalar targets.
	if target.ArrayWidth == 0 && replication > 1 {
		for rep := replication - 1; rep >= 1; rep-- {
			need = t.Entries * rep
			for s := minStage; s < len(sramLeft); s++ {
				if sramLeft[s] >= need {
					sramLeft[s] -= need
					p := (k + rep - 1) / rep
					return TablePlacement{Replication: rep, SRAMEntries: need, Passes: p}, s, nil
				}
			}
		}
	}
	return TablePlacement{}, 0, fmt.Errorf("table %q (%d entries × %d copies) does not fit in any stage", t.Name, t.Entries, replication)
}

// dagLevels computes the longest-path level of every resource from Deps.
func dagLevels(spec *Spec) (map[string]int, error) {
	adj := make(map[string][]string)
	indeg := make(map[string]int)
	names := make([]string, 0, len(spec.Tables)+len(spec.Registers))
	for _, t := range spec.Tables {
		indeg[t.Name] = 0
		names = append(names, t.Name)
	}
	for _, r := range spec.Registers {
		indeg[r.Name] = 0
		names = append(names, r.Name)
	}
	for _, d := range spec.Deps {
		adj[d[0]] = append(adj[d[0]], d[1])
		indeg[d[1]]++
	}
	// Kahn with deterministic order.
	level := make(map[string]int, len(names))
	queue := make([]string, 0, len(names))
	for _, n := range names {
		if indeg[n] == 0 {
			queue = append(queue, n)
		}
	}
	sort.Strings(queue)
	done := 0
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		done++
		for _, m := range adj[n] {
			if level[n]+1 > level[m] {
				level[m] = level[n] + 1
			}
			indeg[m]--
			if indeg[m] == 0 {
				queue = append(queue, m)
				sort.Strings(queue)
			}
		}
	}
	if done != len(names) {
		return nil, fmt.Errorf("dependency cycle among resources")
	}
	return level, nil
}
