package program

import (
	"fmt"
	"sort"

	"repro/internal/mat"
	"repro/internal/pipeline"
)

// TableHandle binds a compiled logical table to the stage memory that
// hosts it in a live pipeline, so applications can install entries without
// knowing the placement.
type TableHandle struct {
	Name        string
	Stage       int
	Replication int
	mem         *mat.StageMemory
}

// Install adds an entry to the bound table (all replicas on scalar
// targets).
func (h *TableHandle) Install(key uint64, r mat.Result) error {
	return h.mem.Install(key, r)
}

// Lookup matches a single key.
func (h *TableHandle) Lookup(key uint64) (mat.Result, bool) {
	return h.mem.Lookup(key)
}

// LookupBatch matches up to Parallelism keys in one traversal.
func (h *TableHandle) LookupBatch(keys []uint64, results []mat.Result, hits []bool) (int, error) {
	return h.mem.LookupBatch(keys, results, hits)
}

// Installed returns distinct logical entries.
func (h *TableHandle) Installed() int { return h.mem.Installed() }

// RegisterHandle binds a compiled register block to its stage.
type RegisterHandle struct {
	Name  string
	Stage int
	regs  *mat.RegisterFile
}

// Execute performs a stateful op on the bound block. The compiler placed
// the block whole, so idx addresses within [0, Cells).
func (h *RegisterHandle) Execute(op mat.RegisterOp, idx int, arg uint64) uint64 {
	return h.regs.Execute(op, idx, arg)
}

// Peek reads a cell without an RMW.
func (h *RegisterHandle) Peek(idx int) uint64 { return h.regs.Peek(idx) }

// Binding is a placement realized on a concrete pipeline.
type Binding struct {
	Tables    map[string]*TableHandle
	Registers map[string]*RegisterHandle
}

// Bind realizes a Placement on a live pipeline: it configures stage
// memories for the placed replication factors and returns handles.
//
// Model restriction: a stage's replication factor is stage-global, so two
// tables placed in one stage must agree on it; Bind rejects placements
// that don't (the compiler's first-fit keeps same-k tables apart only by
// SRAM, so this can legitimately fire — re-spec with explicit Deps to
// separate them).
func Bind(pl *Placement, p *pipeline.Pipeline) (*Binding, error) {
	if pl.StagesUsed > p.NumStages() {
		return nil, fmt.Errorf("program: placement needs %d stages, pipeline has %d", pl.StagesUsed, p.NumStages())
	}
	// Group replication needs per stage.
	repNeed := map[int]int{}
	names := make([]string, 0, len(pl.Tables))
	for name := range pl.Tables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		tp := pl.Tables[name]
		if prev, ok := repNeed[tp.Stage]; ok && prev != tp.Replication {
			return nil, fmt.Errorf("program: stage %d hosts tables with replication %d and %d", tp.Stage, prev, tp.Replication)
		}
		repNeed[tp.Stage] = tp.Replication
	}
	b := &Binding{
		Tables:    make(map[string]*TableHandle),
		Registers: make(map[string]*RegisterHandle),
	}
	for stage, k := range repNeed {
		mem := p.Stage(stage).Mem
		if mem.Mode() == mat.ModeScalar && k > 1 {
			if err := mem.ConfigureReplication(k); err != nil {
				return nil, fmt.Errorf("program: stage %d: %w", stage, err)
			}
		}
	}
	for _, name := range names {
		tp := pl.Tables[name]
		b.Tables[name] = &TableHandle{
			Name:        name,
			Stage:       tp.Stage,
			Replication: tp.Replication,
			mem:         p.Stage(tp.Stage).Mem,
		}
	}
	for name, stage := range pl.Registers {
		b.Registers[name] = &RegisterHandle{Name: name, Stage: stage, regs: p.Stage(stage).Regs}
	}
	return b, nil
}
