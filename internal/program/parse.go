package program

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/phv"
)

// Parse reads the textual program format into a Spec. The format is a
// minimal P4-flavored declaration language — one declaration per line:
//
//	program <name>
//	field <name>: 8|16|32          # scalar PHV field
//	array <name>                   # array PHV container (ADCP only)
//	table <name> exact|lpm|ternary entries=<n> [keys=<k>]
//	register <name> cells=<n>
//	after <a> <b>                  # place a strictly before b
//	# comment
//
// Example:
//
//	program kvcache
//	field kv_op: 8
//	array batch
//	table cache exact entries=32768 keys=8
//	register hits cells=1024
//	after cache hits
//
// The result still goes through Spec.Validate inside Compile; Parse only
// reports syntax errors, with line numbers.
func Parse(src string) (*Spec, error) {
	spec := &Spec{}
	sawProgram := false
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		errf := func(format string, args ...any) error {
			return fmt.Errorf("program: line %d: %s", lineNo+1, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "program":
			if len(fields) != 2 {
				return nil, errf("want 'program <name>'")
			}
			if sawProgram {
				return nil, errf("duplicate program declaration")
			}
			spec.Name = fields[1]
			sawProgram = true
		case "field":
			// "field name: width" — tolerate "name:" glued or separate.
			rest := strings.TrimSpace(strings.TrimPrefix(line, "field"))
			name, widthStr, ok := strings.Cut(rest, ":")
			if !ok {
				return nil, errf("want 'field <name>: <width>'")
			}
			name = strings.TrimSpace(name)
			width, err := strconv.Atoi(strings.TrimSpace(widthStr))
			if err != nil {
				return nil, errf("bad width %q", strings.TrimSpace(widthStr))
			}
			var w phv.Width
			switch width {
			case 8:
				w = phv.W8
			case 16:
				w = phv.W16
			case 32:
				w = phv.W32
			default:
				return nil, errf("width %d not one of 8, 16, 32", width)
			}
			if name == "" {
				return nil, errf("empty field name")
			}
			spec.Fields = append(spec.Fields, FieldSpec{Name: name, Width: w})
		case "array":
			if len(fields) != 2 {
				return nil, errf("want 'array <name>'")
			}
			spec.Fields = append(spec.Fields, FieldSpec{Name: fields[1], Array: true})
		case "table":
			if len(fields) < 4 {
				return nil, errf("want 'table <name> <kind> entries=<n> [keys=<k>]'")
			}
			t := TableSpec{Name: fields[1], KeysPerPacket: 1}
			switch fields[2] {
			case "exact":
				t.Kind = MatchExact
			case "lpm":
				t.Kind = MatchLPM
			case "ternary":
				t.Kind = MatchTernary
			default:
				return nil, errf("match kind %q not one of exact, lpm, ternary", fields[2])
			}
			for _, kv := range fields[3:] {
				key, val, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, errf("want key=value, got %q", kv)
				}
				n, err := strconv.Atoi(val)
				if err != nil {
					return nil, errf("bad number %q", val)
				}
				switch key {
				case "entries":
					t.Entries = n
				case "keys":
					t.KeysPerPacket = n
				default:
					return nil, errf("unknown table attribute %q", key)
				}
			}
			if t.Entries == 0 {
				return nil, errf("table %q missing entries=", t.Name)
			}
			spec.Tables = append(spec.Tables, t)
		case "register":
			if len(fields) != 3 {
				return nil, errf("want 'register <name> cells=<n>'")
			}
			key, val, ok := strings.Cut(fields[2], "=")
			if !ok || key != "cells" {
				return nil, errf("want cells=<n>, got %q", fields[2])
			}
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, errf("bad number %q", val)
			}
			spec.Registers = append(spec.Registers, RegisterSpec{Name: fields[1], Cells: n})
		case "after":
			if len(fields) != 3 {
				return nil, errf("want 'after <a> <b>'")
			}
			spec.Deps = append(spec.Deps, [2]string{fields[1], fields[2]})
		default:
			return nil, errf("unknown declaration %q", fields[0])
		}
	}
	if !sawProgram {
		return nil, fmt.Errorf("program: missing 'program <name>' declaration")
	}
	return spec, nil
}

// Format renders a Spec back into the textual form Parse accepts
// (Parse(Format(s)) reproduces s up to ordering).
func Format(s *Spec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\n", s.Name)
	for _, f := range s.Fields {
		if f.Array {
			fmt.Fprintf(&b, "array %s\n", f.Name)
		} else {
			fmt.Fprintf(&b, "field %s: %d\n", f.Name, int(f.Width))
		}
	}
	for _, t := range s.Tables {
		fmt.Fprintf(&b, "table %s %s entries=%d keys=%d\n", t.Name, t.Kind, t.Entries, t.KeysPerPacket)
	}
	for _, r := range s.Registers {
		fmt.Fprintf(&b, "register %s cells=%d\n", r.Name, r.Cells)
	}
	for _, d := range s.Deps {
		fmt.Fprintf(&b, "after %s %s\n", d[0], d[1])
	}
	return b.String()
}
