package program

import (
	"strings"
	"testing"

	"repro/internal/phv"
)

const sampleSrc = `
# An in-network multi-key cache.
program kvcache

field kv_op: 8
field coflow_id: 32
array batch

table cache exact entries=32768 keys=8
table route lpm entries=1024
table acl ternary entries=256

register hits cells=1024

after cache hits
after route acl
`

func TestParseSample(t *testing.T) {
	spec, err := Parse(sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "kvcache" {
		t.Errorf("name = %q", spec.Name)
	}
	if len(spec.Fields) != 3 {
		t.Fatalf("fields = %d", len(spec.Fields))
	}
	if spec.Fields[0] != (FieldSpec{Name: "kv_op", Width: phv.W8}) {
		t.Errorf("field 0 = %+v", spec.Fields[0])
	}
	if !spec.Fields[2].Array || spec.Fields[2].Name != "batch" {
		t.Errorf("array field = %+v", spec.Fields[2])
	}
	if len(spec.Tables) != 3 {
		t.Fatalf("tables = %d", len(spec.Tables))
	}
	cache := spec.Tables[0]
	if cache.Kind != MatchExact || cache.Entries != 32768 || cache.KeysPerPacket != 8 {
		t.Errorf("cache = %+v", cache)
	}
	if spec.Tables[1].Kind != MatchLPM || spec.Tables[1].KeysPerPacket != 1 {
		t.Errorf("route = %+v", spec.Tables[1])
	}
	if spec.Tables[2].Kind != MatchTernary {
		t.Errorf("acl = %+v", spec.Tables[2])
	}
	if len(spec.Registers) != 1 || spec.Registers[0].Cells != 1024 {
		t.Errorf("registers = %+v", spec.Registers)
	}
	if len(spec.Deps) != 2 || spec.Deps[0] != [2]string{"cache", "hits"} {
		t.Errorf("deps = %+v", spec.Deps)
	}
}

func TestParsedProgramCompilesEndToEnd(t *testing.T) {
	spec, err := Parse(sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	// The array field makes it ADCP-only.
	if _, err := Compile(spec, RMTTarget()); err == nil {
		t.Error("array program compiled for RMT")
	}
	pl, err := Compile(spec, ADCPTarget())
	if err != nil {
		t.Fatal(err)
	}
	if pl.Tables["cache"].Replication != 1 {
		t.Errorf("placement %+v", pl.Tables["cache"])
	}
	if pl.Registers["hits"] <= pl.Tables["cache"].Stage {
		t.Error("dependency not honored through the text front-end")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"missing program", "field x: 8"},
		{"duplicate program", "program a\nprogram b"},
		{"program arity", "program"},
		{"field syntax", "program p\nfield broken"},
		{"field width", "program p\nfield x: 12"},
		{"field bad number", "program p\nfield x: zoo"},
		{"field empty name", "program p\nfield : 8"},
		{"array arity", "program p\narray"},
		{"table arity", "program p\ntable t exact"},
		{"table kind", "program p\ntable t fuzzy entries=4"},
		{"table attr", "program p\ntable t exact entries=4 color=red"},
		{"table attr syntax", "program p\ntable t exact entries"},
		{"table attr number", "program p\ntable t exact entries=lots"},
		{"table no entries", "program p\ntable t exact keys=2 keys=3"},
		{"register arity", "program p\nregister r"},
		{"register attr", "program p\nregister r size=4"},
		{"register number", "program p\nregister r cells=x"},
		{"after arity", "program p\nafter a"},
		{"unknown decl", "program p\nfrobnicate x"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: accepted", c.name)
		} else if !strings.Contains(err.Error(), "line") && c.name != "missing program" {
			t.Errorf("%s: error lacks line number: %v", c.name, err)
		}
	}
}

func TestParseCommentsAndBlanks(t *testing.T) {
	spec, err := Parse("\n\n# header\nprogram p  # trailing comment\n\n  \n")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "p" {
		t.Errorf("name = %q", spec.Name)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	orig, err := Parse(sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Parse(Format(orig))
	if err != nil {
		t.Fatalf("Format output did not re-parse: %v\n%s", err, Format(orig))
	}
	if again.Name != orig.Name || len(again.Fields) != len(orig.Fields) ||
		len(again.Tables) != len(orig.Tables) || len(again.Registers) != len(orig.Registers) ||
		len(again.Deps) != len(orig.Deps) {
		t.Errorf("round trip lost declarations:\n%+v\nvs\n%+v", again, orig)
	}
	for i := range orig.Tables {
		if again.Tables[i] != orig.Tables[i] {
			t.Errorf("table %d: %+v vs %+v", i, again.Tables[i], orig.Tables[i])
		}
	}
}
