package program

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/phv"
)

func kvCacheSpec(keysPerPacket int) *Spec {
	return &Spec{
		Name: "kvcache",
		Fields: []FieldSpec{
			{Name: "coflow_id", Width: phv.W32},
			{Name: "kv_op", Width: phv.W8},
		},
		Tables: []TableSpec{
			{Name: "cache", Kind: MatchExact, Entries: 32 * 1024, KeysPerPacket: keysPerPacket},
			{Name: "route", Kind: MatchLPM, Entries: 1024, KeysPerPacket: 1},
		},
		Registers: []RegisterSpec{
			{Name: "hits", Cells: 1024},
		},
		Deps: [][2]string{{"cache", "hits"}},
	}
}

func TestValidate(t *testing.T) {
	if err := kvCacheSpec(1).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Spec{
		{Name: "t", Tables: []TableSpec{{Name: "", Entries: 1, KeysPerPacket: 1}}},
		{Name: "t", Tables: []TableSpec{{Name: "a", Entries: 0, KeysPerPacket: 1}}},
		{Name: "t", Tables: []TableSpec{{Name: "a", Entries: 1, KeysPerPacket: 0}}},
		{Name: "t", Tables: []TableSpec{{Name: "a", Entries: 1, KeysPerPacket: 1}, {Name: "a", Entries: 1, KeysPerPacket: 1}}},
		{Name: "t", Registers: []RegisterSpec{{Name: "r", Cells: 0}}},
		{Name: "t", Deps: [][2]string{{"x", "y"}}},
		{Name: "t", Tables: []TableSpec{{Name: "a", Entries: 1, KeysPerPacket: 1}}, Deps: [][2]string{{"a", "a"}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestScalarPlacementSinglePass(t *testing.T) {
	pl, err := Compile(kvCacheSpec(1), RMTTarget())
	if err != nil {
		t.Fatal(err)
	}
	if pl.MaxPasses != 1 || pl.RecirculationOverhead != 0 {
		t.Errorf("passes=%d overhead=%v", pl.MaxPasses, pl.RecirculationOverhead)
	}
	cache := pl.Tables["cache"]
	if cache.Replication != 1 || cache.SRAMEntries != 32*1024 {
		t.Errorf("cache placement %+v", cache)
	}
	// Dependency honored: hits register strictly after cache.
	if pl.Registers["hits"] <= cache.Stage {
		t.Errorf("hits at stage %d, cache at %d — dep violated", pl.Registers["hits"], cache.Stage)
	}
	if pl.PHVBitsUsed != 40 {
		t.Errorf("PHV bits = %d, want 40", pl.PHVBitsUsed)
	}
}

func TestRMTReplicationCost(t *testing.T) {
	// Figure 3: 8 keys per packet → 8 copies on RMT (table small enough
	// that 8 copies fit in one 64K stage).
	spec := &Spec{
		Name:   "smallcache",
		Tables: []TableSpec{{Name: "cache", Kind: MatchExact, Entries: 4 * 1024, KeysPerPacket: 8}},
	}
	pl, err := Compile(spec, RMTTarget())
	if err != nil {
		t.Fatal(err)
	}
	cache := pl.Tables["cache"]
	if cache.Replication != 8 {
		t.Errorf("replication = %d, want 8", cache.Replication)
	}
	if cache.SRAMEntries != 8*4*1024 {
		t.Errorf("SRAM = %d, want 8×4096", cache.SRAMEntries)
	}
	if cache.Passes != 1 {
		t.Errorf("passes = %d (replication covers all keys)", cache.Passes)
	}
	// A 32K-entry table with 8 keys cannot fully replicate: the compiler
	// degrades to 2 copies (64K SRAM) and 4 passes.
	pl2, err := Compile(kvCacheSpec(8), RMTTarget())
	if err != nil {
		t.Fatal(err)
	}
	c2 := pl2.Tables["cache"]
	if c2.Replication != 2 || c2.Passes != 4 {
		t.Errorf("degraded placement = %+v, want replication 2, passes 4", c2)
	}
}

func TestADCPNoReplication(t *testing.T) {
	pl, err := Compile(kvCacheSpec(8), ADCPTarget())
	if err != nil {
		t.Fatal(err)
	}
	cache := pl.Tables["cache"]
	if cache.Replication != 1 {
		t.Errorf("ADCP replication = %d, want 1 (array interconnect)", cache.Replication)
	}
	if cache.SRAMEntries != 32*1024 {
		t.Errorf("ADCP SRAM = %d", cache.SRAMEntries)
	}
	if pl.MaxPasses != 1 {
		t.Errorf("ADCP passes = %d", pl.MaxPasses)
	}
}

func TestRMTFallsBackToRecirculation(t *testing.T) {
	// A big table (48K entries) with 4 keys/packet: 4 copies = 192K > 64K
	// stage budget. The compiler reduces replication (1 copy fits) and
	// reports 4 passes — the recirculation cost of §2.
	spec := &Spec{
		Name:   "bigcache",
		Tables: []TableSpec{{Name: "cache", Kind: MatchExact, Entries: 48 * 1024, KeysPerPacket: 4}},
	}
	pl, err := Compile(spec, RMTTarget())
	if err != nil {
		t.Fatal(err)
	}
	cache := pl.Tables["cache"]
	if cache.Replication != 1 {
		t.Errorf("replication = %d, want 1 (forced down by SRAM)", cache.Replication)
	}
	if cache.Passes != 4 || pl.MaxPasses != 4 {
		t.Errorf("passes = %d/%d, want 4", cache.Passes, pl.MaxPasses)
	}
	if pl.RecirculationOverhead != 0.75 {
		t.Errorf("overhead = %v, want 0.75", pl.RecirculationOverhead)
	}
	// Same program on ADCP: single pass, full table.
	pl2, err := Compile(spec, ADCPTarget())
	if err != nil {
		t.Fatal(err)
	}
	if pl2.MaxPasses != 1 || pl2.Tables["cache"].SRAMEntries != 48*1024 {
		t.Errorf("ADCP placement: %+v", pl2.Tables["cache"])
	}
}

func TestNoRecirculationTargetRejects(t *testing.T) {
	spec := &Spec{
		Name:   "wide",
		Tables: []TableSpec{{Name: "t", Kind: MatchExact, Entries: 48 * 1024, KeysPerPacket: 4}},
	}
	target := RMTTarget()
	target.AllowRecirculate = false
	_, err := Compile(spec, target)
	var inf *ErrInfeasible
	if !errors.As(err, &inf) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	if !strings.Contains(inf.Reason, "passes") {
		t.Errorf("reason = %q", inf.Reason)
	}
}

func TestKeysBeyondArrayWidthNeedPasses(t *testing.T) {
	spec := &Spec{
		Name:   "vwide",
		Tables: []TableSpec{{Name: "t", Kind: MatchExact, Entries: 1024, KeysPerPacket: 32}},
	}
	pl, err := Compile(spec, ADCPTarget()) // width 16
	if err == nil {
		if pl.MaxPasses != 2 {
			t.Errorf("passes = %d, want 2", pl.MaxPasses)
		}
	} else {
		// ADCP has no recirculation: 32 keys over a 16-wide array is
		// rejected, which is also acceptable behavior.
		var inf *ErrInfeasible
		if !errors.As(err, &inf) {
			t.Fatalf("err = %v", err)
		}
	}
}

func TestArrayFieldRejectedOnRMT(t *testing.T) {
	spec := &Spec{
		Name:   "arr",
		Fields: []FieldSpec{{Name: "weights", Array: true}},
		Tables: []TableSpec{{Name: "t", Kind: MatchExact, Entries: 16, KeysPerPacket: 1}},
	}
	if _, err := Compile(spec, RMTTarget()); err == nil {
		t.Fatal("array field accepted on RMT")
	}
	pl, err := Compile(spec, ADCPTarget())
	if err != nil {
		t.Fatal(err)
	}
	if pl.ArraySlotsUsed != 1 {
		t.Errorf("array slots = %d", pl.ArraySlotsUsed)
	}
	if pl.Layout.Lookup("weights") == phv.Invalid {
		t.Error("layout missing array field")
	}
}

func TestDependencyChainTooLong(t *testing.T) {
	spec := &Spec{Name: "chain"}
	var prev string
	for i := 0; i < 14; i++ { // 14 > 12 stages
		name := string(rune('a' + i))
		spec.Tables = append(spec.Tables, TableSpec{Name: name, Kind: MatchExact, Entries: 16, KeysPerPacket: 1})
		if prev != "" {
			spec.Deps = append(spec.Deps, [2]string{prev, name})
		}
		prev = name
	}
	if _, err := Compile(spec, RMTTarget()); err == nil {
		t.Fatal("14-deep chain placed in 12 stages")
	}
}

func TestDependencyCycleRejected(t *testing.T) {
	spec := &Spec{
		Name: "cyc",
		Tables: []TableSpec{
			{Name: "a", Kind: MatchExact, Entries: 16, KeysPerPacket: 1},
			{Name: "b", Kind: MatchExact, Entries: 16, KeysPerPacket: 1},
		},
		Deps: [][2]string{{"a", "b"}, {"b", "a"}},
	}
	if _, err := Compile(spec, RMTTarget()); err == nil {
		t.Fatal("cyclic deps accepted")
	}
}

func TestSRAMSpillsAcrossStages(t *testing.T) {
	// Two 48K tables cannot share one 64K stage; second spills to stage 1.
	spec := &Spec{
		Name: "two",
		Tables: []TableSpec{
			{Name: "a", Kind: MatchExact, Entries: 48 * 1024, KeysPerPacket: 1},
			{Name: "b", Kind: MatchExact, Entries: 48 * 1024, KeysPerPacket: 1},
		},
	}
	pl, err := Compile(spec, RMTTarget())
	if err != nil {
		t.Fatal(err)
	}
	if pl.Tables["a"].Stage == pl.Tables["b"].Stage {
		t.Error("two 48K tables placed in one 64K stage")
	}
	if pl.StagesUsed != 2 {
		t.Errorf("StagesUsed = %d", pl.StagesUsed)
	}
}

func TestTableTooBigAnywhere(t *testing.T) {
	spec := &Spec{
		Name:   "huge",
		Tables: []TableSpec{{Name: "t", Kind: MatchExact, Entries: 1 << 20, KeysPerPacket: 1}},
	}
	var inf *ErrInfeasible
	if _, err := Compile(spec, RMTTarget()); !errors.As(err, &inf) {
		t.Fatalf("err = %v", err)
	}
}

func TestRegisterPlacement(t *testing.T) {
	spec := &Spec{
		Name: "regs",
		Registers: []RegisterSpec{
			{Name: "r1", Cells: 3000},
			{Name: "r2", Cells: 3000}, // does not fit with r1 in 4K stage
		},
	}
	pl, err := Compile(spec, RMTTarget())
	if err != nil {
		t.Fatal(err)
	}
	if pl.Registers["r1"] == pl.Registers["r2"] {
		t.Error("6000 cells placed in a 4096-cell stage")
	}
	big := &Spec{Name: "r", Registers: []RegisterSpec{{Name: "r", Cells: 1 << 20}}}
	if _, err := Compile(big, RMTTarget()); err == nil {
		t.Error("oversized register accepted")
	}
}

func TestDeterministicPlacement(t *testing.T) {
	spec := kvCacheSpec(4)
	a, err := Compile(spec, RMTTarget())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		b, err := Compile(spec, RMTTarget())
		if err != nil {
			t.Fatal(err)
		}
		if a.Tables["cache"] != b.Tables["cache"] || a.Tables["route"] != b.Tables["route"] ||
			a.Registers["hits"] != b.Registers["hits"] {
			t.Fatal("placement not deterministic")
		}
	}
}

// Property: for any key width 1..16, RMT SRAM cost is exactly
// replication × entries and ADCP cost is entries; RMT replication × passes
// covers all keys.
func TestPlacementCostProperty(t *testing.T) {
	f := func(kRaw uint8) bool {
		k := int(kRaw)%16 + 1
		spec := &Spec{
			Name:   "p",
			Tables: []TableSpec{{Name: "t", Kind: MatchExact, Entries: 1024, KeysPerPacket: k}},
		}
		rmtPl, err := Compile(spec, RMTTarget())
		if err != nil {
			return false
		}
		adcpPl, err := Compile(spec, ADCPTarget())
		if err != nil {
			return false
		}
		rt := rmtPl.Tables["t"]
		at := adcpPl.Tables["t"]
		if rt.SRAMEntries != rt.Replication*1024 || at.SRAMEntries != 1024 {
			return false
		}
		return rt.Replication*rt.Passes >= k && at.Passes == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMatchKindStrings(t *testing.T) {
	for _, k := range []MatchKind{MatchExact, MatchLPM, MatchTernary, MatchKind(9)} {
		if k.String() == "" {
			t.Errorf("kind %d empty", int(k))
		}
	}
}

func TestDependencyFollowsPlacedStageNotLevel(t *testing.T) {
	// cache is pushed to stage 1 by SRAM pressure (stage 0 is occupied by
	// a big filler table); its dependent register must land at stage ≥ 2
	// even though its DAG level is only 1.
	spec := &Spec{
		Name: "pushed",
		Tables: []TableSpec{
			{Name: "a_filler", Kind: MatchExact, Entries: 60 * 1024, KeysPerPacket: 1},
			{Name: "cache", Kind: MatchExact, Entries: 32 * 1024, KeysPerPacket: 1},
		},
		Registers: []RegisterSpec{{Name: "hits", Cells: 16}},
		Deps:      [][2]string{{"cache", "hits"}},
	}
	pl, err := Compile(spec, RMTTarget())
	if err != nil {
		t.Fatal(err)
	}
	if pl.Tables["cache"].Stage != 1 {
		t.Fatalf("cache at stage %d, want 1 (SRAM push)", pl.Tables["cache"].Stage)
	}
	if pl.Registers["hits"] <= pl.Tables["cache"].Stage {
		t.Errorf("hits at stage %d, not after cache at %d", pl.Registers["hits"], pl.Tables["cache"].Stage)
	}
}
