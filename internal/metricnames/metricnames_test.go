package metricnames

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

func repoRoot() string { return filepath.Join("..", "..") }

func TestScanFindsKnownRegistrations(t *testing.T) {
	found, err := Scan(repoRoot())
	if err != nil {
		t.Fatal(err)
	}
	// One representative per registration mechanism.
	wants := map[string]string{
		"net.e2e_latency_ps":                       "histogram", // direct reg.Histogram literal
		"net.injected_pkts":                        "gauge",     // direct reg.ObserveFunc literal
		"net.retx.pkts":                            "gauge",     // file-local forwarding helper (retx := func(name string, ...))
		"exp.saturation.cct_ps":                    "value",     // experiments record() helper
		telemetry.BucketRecirculation.SeriesName(): "value",     // dynamic bucket family
	}
	for name, kind := range wants {
		if got := found[name]; got != kind {
			t.Errorf("Scan[%q] = %q, want %q", name, got, kind)
		}
	}
	// Trace event names must NOT be mistaken for metrics.
	for _, not := range []string{"switch.process", "switch.arrive", "switch.error"} {
		if _, ok := found[not]; ok {
			t.Errorf("Scan picked up trace event name %q as a metric", not)
		}
	}
}

func TestGenerateMatchesCommittedDoc(t *testing.T) {
	doc, err := Generate(repoRoot())
	if err != nil {
		t.Fatal(err)
	}
	committed, err := os.ReadFile(filepath.Join(repoRoot(), "docs", "METRICS.md"))
	if err != nil {
		t.Fatal(err)
	}
	if string(doc) != string(committed) {
		t.Fatal("docs/METRICS.md is stale: run `go run ./cmd/metricsdoc`")
	}
}

func TestGenerateFailsOnUndocumentedSeries(t *testing.T) {
	root := t.TempDir()
	src := `package demo

func register(reg registry) {
	reg.Counter("demo.rogue_series")
}
`
	if err := os.MkdirAll(filepath.Join(root, "internal", "demo"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "internal", "demo", "demo.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Generate(root)
	if err == nil {
		t.Fatal("Generate accepted an undocumented series")
	}
	if !strings.Contains(err.Error(), "demo.rogue_series") {
		t.Fatalf("error does not name the rogue series: %v", err)
	}
}
