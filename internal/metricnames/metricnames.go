// Package metricnames is the source of truth for the metrics reference
// (docs/METRICS.md). It couples two halves: Scan walks the non-test Go
// sources and extracts every series name registered on the telemetry
// registry, and Catalog carries the hand-written kind/label/meaning
// documentation for each. Generate joins them — and fails loudly when a
// registered series is undocumented, a documented series no longer exists,
// or the documented kind drifts from the registration — so `make
// docs-check` (and CI) keeps the reference exact.
package metricnames

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/telemetry"
)

// kindOf maps registry method names to documented kinds. ObserveFunc
// registers a lazily-read gauge; Set registers a set-once result value.
var kindOf = map[string]string{
	"Counter":     "counter",
	"Gauge":       "gauge",
	"Histogram":   "histogram",
	"Set":         "value",
	"ObserveFunc": "gauge",
}

// Scan extracts every registry series name registered by non-test Go files
// under root's internal/ and cmd/ trees, mapped to its kind. It recognizes
//
//   - direct registrations: reg.Counter("name", ...) and friends, where
//     the receiver is the conventional identifier `reg`;
//   - the experiments helper: record("name", ...) registers "exp."+name;
//   - file-local forwarding helpers: h := func(name string, ...) { ...
//     reg.Kind(name, ...) } followed by h("literal", ...);
//   - the dynamic cct.attr.* family, enumerated from the telemetry bucket
//     set rather than source text (CritPath.Publish registers them via
//     Bucket.SeriesName()).
//
// A name registered with two different kinds is an error.
func Scan(root string) (map[string]string, error) {
	found := map[string]string{}
	add := func(name, kind, where string) error {
		if prev, ok := found[name]; ok && prev != kind {
			return fmt.Errorf("%s: series %q registered as both %s and %s", where, name, prev, kind)
		}
		found[name] = kind
		return nil
	}
	for bk := telemetry.Bucket(0); bk < telemetry.NumBuckets; bk++ {
		if err := add(bk.SeriesName(), "value", "telemetry.CritPath.Publish"); err != nil {
			return nil, err
		}
	}
	for _, dir := range []string{"internal", "cmd"} {
		base := filepath.Join(root, dir)
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			return scanFile(path, add)
		})
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return nil, err
		}
	}
	return found, nil
}

// scanFile extracts registrations from one source file.
func scanFile(path string, add func(name, kind, where string) error) error {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		return err
	}

	// Pass 1: find file-local forwarding helpers — `h := func(name string,
	// ...) { ... reg.Kind(name, ...) }` — and remember their kinds.
	helpers := map[string]string{}
	ast.Inspect(f, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		fn, ok := as.Rhs[0].(*ast.FuncLit)
		if !ok || fn.Type.Params == nil || len(fn.Type.Params.List) == 0 {
			return true
		}
		params := fn.Type.Params.List[0]
		if t, ok := params.Type.(*ast.Ident); !ok || t.Name != "string" || len(params.Names) == 0 {
			return true
		}
		param := params.Names[0].Name
		ast.Inspect(fn.Body, func(m ast.Node) bool {
			kind, arg0 := regCall(m)
			if kind == "" {
				return true
			}
			if id, ok := arg0.(*ast.Ident); ok && id.Name == param {
				helpers[lhs.Name] = kind
			}
			return true
		})
		return true
	})

	// Pass 2: collect literal registrations — direct, via record, and via
	// the helpers found above.
	var scanErr error
	where := filepath.Base(path)
	ast.Inspect(f, func(n ast.Node) bool {
		if scanErr != nil {
			return false
		}
		if kind, arg0 := regCall(n); kind != "" {
			if name, ok := strArg(arg0); ok {
				scanErr = add(name, kind, where)
			}
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			return true
		}
		if name, lit := strArg(call.Args[0]); lit {
			if id.Name == "record" {
				scanErr = add("exp."+name, "value", where)
			} else if kind, ok := helpers[id.Name]; ok {
				scanErr = add(name, kind, where)
			}
		}
		return true
	})
	return scanErr
}

// regCall matches reg.<Kind>(arg0, ...) and returns the documented kind
// and the first argument, or ("", nil).
func regCall(n ast.Node) (string, ast.Expr) {
	call, ok := n.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return "", nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	recv, ok := sel.X.(*ast.Ident)
	if !ok || recv.Name != "reg" {
		return "", nil
	}
	kind, ok := kindOf[sel.Sel.Name]
	if !ok {
		return "", nil
	}
	return kind, call.Args[0]
}

// strArg unquotes a string literal argument.
func strArg(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// Doc is the hand-written documentation of one series.
type Doc struct {
	Kind    string // counter | gauge | histogram | value
	Labels  string // label keys, comma-separated; "" = none
	Meaning string
}

// section groups series by name prefix for the generated document.
type section struct {
	prefix, title, blurb string
}

var sections = []section{
	{"cct.attr.", "Critical-path CCT attribution",
		"Per-coflow breakdown of the completion time along the causal critical path. The buckets tile the measured CCT exactly (their sum equals `LastDeliver - FirstSend` to the picosecond); see docs/OBSERVABILITY.md for the span model."},
	{"exp.", "Experiment headline results",
		"Set-once results recorded by the experiments in internal/experiments; labels carry the sweep coordinates, so every point exports as its own series."},
	{"ha.", "Replication and failover",
		"Warm-standby replication counters, registered only when a network is built with a standby pair."},
	{"net.", "Network simulator",
		"End-host and wire-level series from internal/netsim. Fault and retransmission families exist only when a fault plan or recovery is configured."},
	{"perf.", "Wall-clock performance plane",
		"Machine-dependent throughput, allocation, and worker-pool meters from internal/perf. These live in a registry of their own, exported only via `-perf-json` and the `/perf` endpoint (schema `adcp-perf/1`) — never through `-metrics` — so the deterministic exports stay byte-identical whether the plane is on or off. Compared directionally, not exactly, by cmd/benchcheck."},
	{"service.", "Job daemon service plane",
		"Operational gauges from the experiment job daemon (internal/service, `adcpsim -daemon`): queue depth and shedding, terminal-state counts, recovery and retry activity, drain state. Registered in the daemon's own registry and served on the daemon's `/metrics`; per-job experiment metrics live under `/jobs/{id}/metrics` instead."},
	{"switch.", "Switch models",
		"Per-switch-instance series from the ADCP (internal/core) and RMT (internal/rmt) models and the shared TM/pipeline observers."},
}

// Generate renders the metrics reference for the tree at root, verifying
// the catalog against the scanned registrations first.
func Generate(root string) ([]byte, error) {
	found, err := Scan(root)
	if err != nil {
		return nil, err
	}
	var problems []string
	for name, kind := range found {
		d, ok := Catalog[name]
		if !ok {
			problems = append(problems, fmt.Sprintf("series %q is registered but not documented in internal/metricnames", name))
			continue
		}
		if d.Kind != kind {
			problems = append(problems, fmt.Sprintf("series %q documented as %s but registered as %s", name, d.Kind, kind))
		}
	}
	for name := range Catalog {
		if _, ok := found[name]; !ok {
			problems = append(problems, fmt.Sprintf("series %q is documented but no longer registered anywhere", name))
		}
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		return nil, fmt.Errorf("metrics documentation drift:\n  %s", strings.Join(problems, "\n  "))
	}

	names := make([]string, 0, len(Catalog))
	for name := range Catalog {
		names = append(names, name)
	}
	sort.Strings(names)

	var b strings.Builder
	b.WriteString("# Metrics reference\n\n")
	b.WriteString("<!-- Generated by `go run ./cmd/metricsdoc`. Do not edit by hand: edit the catalog in internal/metricnames and regenerate. `make docs-check` fails on drift. -->\n\n")
	b.WriteString("Every series the telemetry registry can export (`adcpsim -metrics`, `/metrics`, the HTML report). Kinds: **counter** — monotonic count; **gauge** — instantaneous readout (including lazily-evaluated `ObserveFunc` registrations); **histogram** — distribution with count/mean/p50/p90/p99/min/max; **value** — set-once result, excluded from time-series sampling.\n")
	for _, sec := range sections {
		var in []string
		for _, name := range names {
			if strings.HasPrefix(name, sec.prefix) {
				in = append(in, name)
			}
		}
		if len(in) == 0 {
			continue
		}
		fmt.Fprintf(&b, "\n## %s\n\n%s\n\n", sec.title, sec.blurb)
		b.WriteString("| series | kind | labels | meaning |\n|---|---|---|---|\n")
		for _, name := range in {
			d := Catalog[name]
			labels := d.Labels
			if labels == "" {
				labels = "—"
			}
			fmt.Fprintf(&b, "| `%s` | %s | %s | %s |\n", name, d.Kind, labels, d.Meaning)
		}
	}
	// Catch catalog entries outside every section (a new prefix needs a
	// new section, not silent omission).
	for _, name := range names {
		matched := false
		for _, sec := range sections {
			if strings.HasPrefix(name, sec.prefix) {
				matched = true
				break
			}
		}
		if !matched {
			return nil, fmt.Errorf("series %q matches no document section; add one in internal/metricnames", name)
		}
	}
	return []byte(b.String()), nil
}
