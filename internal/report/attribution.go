package report

import (
	"fmt"
	"html"
	"sort"
	"strconv"
	"strings"

	"repro/internal/telemetry"
)

// attribution bar geometry (pixels inside the SVG viewBox).
const (
	attrBarH   = 18
	attrBarGap = 6
	attrPadL   = 110 // row label gutter
	attrPadR   = 70  // total label gutter
	attrChartW = 720
	attrPadTop = 4
)

// attrRow is one coflow's critical-path breakdown: the cct.attr.* series
// sharing a (net, coflow) label pair, in bucket order.
type attrRow struct {
	net, coflow string
	buckets     [telemetry.NumBuckets]float64
	total       float64
}

func (r *attrRow) title() string {
	if r.net == "" && r.coflow == "" {
		return "(no labels)"
	}
	return "net " + r.net + " coflow " + r.coflow
}

// collectAttribution gathers cct.attr.* value series into per-coflow rows,
// sorted by net then numeric coflow id — the same order the registry
// publishes them in, so the report is deterministic.
func collectAttribution(snap telemetry.Snapshot) []*attrRow {
	byName := map[string]telemetry.Bucket{}
	for bk := telemetry.Bucket(0); bk < telemetry.NumBuckets; bk++ {
		byName[bk.SeriesName()] = bk
	}
	idx := map[string]*attrRow{}
	for _, m := range snap.Metrics {
		bk, ok := byName[m.Name]
		if !ok || m.Kind != telemetry.KindValue {
			continue
		}
		key := m.Labels["net"] + "\x00" + m.Labels["coflow"]
		r := idx[key]
		if r == nil {
			r = &attrRow{net: m.Labels["net"], coflow: m.Labels["coflow"]}
			idx[key] = r
		}
		r.buckets[bk] += m.Value
		r.total += m.Value
	}
	rows := make([]*attrRow, 0, len(idx))
	for _, r := range idx {
		rows = append(rows, r)
	}
	num := func(s string) int64 {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return -1
		}
		return v
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].net != rows[j].net {
			return rows[i].net < rows[j].net
		}
		ni, nj := num(rows[i].coflow), num(rows[j].coflow)
		if ni != nj {
			return ni < nj
		}
		return rows[i].coflow < rows[j].coflow
	})
	return rows
}

// writeAttribution renders the critical-path CCT breakdown: a per-coflow
// table of bucket times and a stacked horizontal bar chart. Bars share one
// absolute time axis, so coflows are comparable at a glance and the
// recirculation tax or a failover stall shows up as a visibly wider band.
func writeAttribution(b *strings.Builder, snap telemetry.Snapshot) {
	rows := collectAttribution(snap)
	if len(rows) == 0 {
		return
	}
	b.WriteString("<h2>CCT attribution</h2>\n")
	b.WriteString("<p class=\"meta\">critical-path breakdown of each coflow's completion time; buckets tile the CCT exactly</p>\n")

	// Table: one row per (net, coflow), one column per bucket plus total.
	b.WriteString("<table>\n<tr><th>net</th><th>coflow</th>")
	for bk := telemetry.Bucket(0); bk < telemetry.NumBuckets; bk++ {
		fmt.Fprintf(b, "<th>%s</th>", html.EscapeString(bk.String()))
	}
	b.WriteString("<th>total (CCT)</th></tr>\n")
	for _, r := range rows {
		fmt.Fprintf(b, "<tr><td>%s</td><td>%s</td>",
			html.EscapeString(r.net), html.EscapeString(r.coflow))
		for bk := telemetry.Bucket(0); bk < telemetry.NumBuckets; bk++ {
			v := r.buckets[bk]
			if v == 0 {
				b.WriteString("<td class=\"num\">&mdash;</td>")
				continue
			}
			pct := 0.0
			if r.total > 0 {
				pct = v / r.total * 100
			}
			fmt.Fprintf(b, "<td class=\"num\">%s (%.1f%%)</td>",
				html.EscapeString(psString(int64(v))), pct)
		}
		fmt.Fprintf(b, "<td class=\"num\">%s</td></tr>\n",
			html.EscapeString(psString(int64(r.total))))
	}
	b.WriteString("</table>\n")

	// Stacked bars on a shared absolute axis.
	maxTotal := 0.0
	for _, r := range rows {
		if r.total > maxTotal {
			maxTotal = r.total
		}
	}
	if maxTotal == 0 {
		return
	}
	plotW := float64(attrChartW - attrPadL - attrPadR)
	height := attrPadTop + len(rows)*(attrBarH+attrBarGap)
	fmt.Fprintf(b, "<svg viewBox=\"0 0 %d %d\" width=\"%d\" height=\"%d\" role=\"img\">\n",
		attrChartW, height, attrChartW, height)
	for i, r := range rows {
		y := attrPadTop + i*(attrBarH+attrBarGap)
		fmt.Fprintf(b, "<text x=\"%d\" y=\"%d\" class=\"ax\" text-anchor=\"end\">%s</text>\n",
			attrPadL-6, y+attrBarH-5, html.EscapeString(r.title()))
		x := float64(attrPadL)
		for bk := telemetry.Bucket(0); bk < telemetry.NumBuckets; bk++ {
			w := r.buckets[bk] / maxTotal * plotW
			if w <= 0 {
				continue
			}
			fmt.Fprintf(b, "<rect x=\"%.1f\" y=\"%d\" width=\"%.1f\" height=\"%d\" fill=\"%s\"><title>%s: %s</title></rect>\n",
				x, y, w, attrBarH, palette[int(bk)%len(palette)],
				html.EscapeString(bk.String()), html.EscapeString(psString(int64(r.buckets[bk]))))
			x += w
		}
		fmt.Fprintf(b, "<text x=\"%.1f\" y=\"%d\" class=\"ax\">%s</text>\n",
			x+4, y+attrBarH-5, html.EscapeString(psString(int64(r.total))))
	}
	b.WriteString("</svg>\n")
	// Legend: bucket colors, in bucket order.
	b.WriteString("<p class=\"legend\">")
	for bk := telemetry.Bucket(0); bk < telemetry.NumBuckets; bk++ {
		if bk > 0 {
			b.WriteString(" &nbsp; ")
		}
		fmt.Fprintf(b, "<span style=\"color:%s\">&#9632;</span> %s",
			palette[int(bk)%len(palette)], html.EscapeString(bk.String()))
	}
	b.WriteString("</p>\n")
}
