package report

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// buildRun produces a registry + sampled series resembling a small run:
// four scalar series over one engine, a per-port latency histogram, and a
// headline result.
func buildRun(t *testing.T) Report {
	t.Helper()
	reg := telemetry.NewRegistry()
	tx0 := reg.Counter("net.tx_pkts", telemetry.L("port", "0"))
	tx1 := reg.Counter("net.tx_pkts", telemetry.L("port", "1"))
	depth := reg.Gauge("switch.tm.pending_pkts")
	occ := reg.Gauge("switch.tm.occupancy_bytes")
	for p := 0; p < 2; p++ {
		h := reg.Histogram("net.e2e_latency_ps", telemetry.L("port", string(rune('0'+p))))
		for i := 1; i <= 50; i++ {
			h.Observe(float64(i*(p+1)) * 100)
		}
	}
	reg.Set("exp.goodput_gbps", 42.5, telemetry.L("exp", "demo"))

	sp := telemetry.NewSampler(reg, 10*sim.Microsecond, 0)
	eng := sim.NewEngine()
	sp.Attach(eng)
	for i := 1; i <= 20; i++ {
		i := i
		eng.Schedule(sim.Time(i)*5*sim.Microsecond, func() {
			tx0.Inc()
			tx1.Add(2)
			depth.Set(int64(i % 5))
			occ.Set(int64(i * 100))
		})
	}
	eng.Run()

	var buf bytes.Buffer
	if err := sp.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return Report{
		Title:      "demo run",
		Snapshot:   reg.Snapshot(),
		Series:     sp.Series(),
		IntervalPs: int64(sp.Interval()),
	}
}

func render(t *testing.T) string {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, buildRun(t)); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestReportSelfContained(t *testing.T) {
	out := render(t)
	for _, banned := range []string{"<script", "http://", "https://", "<link", "@import", "url("} {
		if strings.Contains(out, banned) {
			t.Errorf("report references external content: found %q", banned)
		}
	}
	for _, want := range []string{"<!DOCTYPE html>", "</html>", "<svg ", "</svg>", "<style>"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestReportHasSampledCharts(t *testing.T) {
	out := render(t)
	// Four scalar series → four polylines across the charts.
	if n := strings.Count(out, "<polyline"); n < 4 {
		t.Errorf("report has %d polylines, want >= 4", n)
	}
	for _, name := range []string{"net.tx_pkts", "switch.tm.pending_pkts", "switch.tm.occupancy_bytes"} {
		if !strings.Contains(out, name) {
			t.Errorf("report missing chart for %s", name)
		}
	}
}

func TestReportLatencyTables(t *testing.T) {
	out := render(t)
	if !strings.Contains(out, "net.e2e_latency_ps") {
		t.Fatal("report missing latency table")
	}
	for _, col := range []string{"<th>p50</th>", "<th>p90</th>", "<th>p99</th>"} {
		if !strings.Contains(out, col) {
			t.Errorf("latency table missing column %s", col)
		}
	}
	// Both ports appear as rows.
	if !strings.Contains(out, "port=0") || !strings.Contains(out, "port=1") {
		t.Error("latency table missing per-port rows")
	}
	// Headline result renders.
	if !strings.Contains(out, "exp.goodput_gbps") || !strings.Contains(out, "42.5") {
		t.Error("results table missing headline metric")
	}
}

func TestReportDeterministic(t *testing.T) {
	if render(t) != render(t) {
		t.Error("report differs across identical runs")
	}
}

func TestReportEscapesTitle(t *testing.T) {
	var buf bytes.Buffer
	err := Write(&buf, Report{Title: `<img src=x onerror=alert(1)>`, Snapshot: telemetry.Snapshot{Schema: "s"}})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "<img") {
		t.Error("title not HTML-escaped")
	}
}

func TestReportEmptySeries(t *testing.T) {
	var buf bytes.Buffer
	reg := telemetry.NewRegistry()
	reg.Counter("lonely").Inc()
	if err := Write(&buf, Report{Title: "empty", Snapshot: reg.Snapshot()}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "<svg") {
		t.Error("empty series produced a chart")
	}
	if !strings.Contains(out, "</html>") {
		t.Error("document truncated")
	}
}
