// Package report renders a completed run's telemetry — registry snapshot
// plus sampled time series — as one self-contained HTML document: inline
// CSS, inline SVG charts, no JavaScript, no external assets. The file can
// be mailed, archived next to experiment output, or opened from a file://
// URL years later and still render. Output is deterministic for
// deterministic inputs, so reports diff cleanly across commits.
package report

import (
	"fmt"
	"html"
	"io"
	"sort"
	"strings"

	"repro/internal/perf"
	"repro/internal/telemetry"
)

// chart geometry (pixels inside the SVG viewBox).
const (
	chartW    = 720
	chartH    = 220
	chartPadL = 64
	chartPadR = 12
	chartPadT = 10
	chartPadB = 28
)

// palette colors successive polylines within one chart. Chosen for contrast
// on a white background; cycles when a chart has more series than colors.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd",
	"#ff7f0e", "#17becf", "#8c564b", "#e377c2",
}

// Report is everything the generator needs from a run.
type Report struct {
	// Title heads the document ("adcpsim run", an experiment list, ...).
	Title string
	// Snapshot is the final registry state (histograms, counters, results).
	Snapshot telemetry.Snapshot
	// Series are the sampled time series (may be empty; the time-series
	// section is omitted then).
	Series []telemetry.SeriesData
	// IntervalPs is the sampling period behind Series, for the caption.
	IntervalPs int64
	// Perf, when set, adds a wall-clock performance section (events/s,
	// allocations, pool utilization, build identity). Unlike the rest of
	// the report this data is machine-dependent, so reports only diff
	// cleanly across commits when it is absent.
	Perf *perf.Document
}

// Write renders the report as one self-contained HTML page.
func Write(w io.Writer, r Report) error {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", html.EscapeString(r.Title))
	b.WriteString("<style>\n" + css + "</style>\n</head>\n<body>\n")
	fmt.Fprintf(&b, "<h1>%s</h1>\n", html.EscapeString(r.Title))
	fmt.Fprintf(&b, "<p class=\"meta\">metrics schema %s · %d series sampled",
		html.EscapeString(r.Snapshot.Schema), len(r.Series))
	if r.IntervalPs > 0 {
		fmt.Fprintf(&b, " every %s", html.EscapeString(psString(r.IntervalPs)))
	}
	b.WriteString("</p>\n")

	writeHeadlines(&b, r.Snapshot)
	writeAttribution(&b, r.Snapshot)
	writeHistTables(&b, r.Snapshot)
	writeCharts(&b, r.Series)
	writePerf(&b, r.Perf)

	b.WriteString("</body>\n</html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHeadlines renders every KindValue metric as one results table.
// Attribution series are excluded: they get their own section with a
// per-bucket table and stacked bars.
func writeHeadlines(b *strings.Builder, snap telemetry.Snapshot) {
	var rows []telemetry.MetricSnapshot
	for _, m := range snap.Metrics {
		if m.Kind == telemetry.KindValue && !strings.HasPrefix(m.Name, telemetry.AttrSeriesPrefix) {
			rows = append(rows, m)
		}
	}
	if len(rows) == 0 {
		return
	}
	b.WriteString("<h2>Results</h2>\n<table>\n<tr><th>metric</th><th>labels</th><th>value</th></tr>\n")
	for _, m := range rows {
		fmt.Fprintf(b, "<tr><td>%s</td><td>%s</td><td class=\"num\">%g</td></tr>\n",
			html.EscapeString(m.Name), html.EscapeString(labelText(m.Labels)), m.Value)
	}
	b.WriteString("</table>\n")
}

// writeHistTables renders one percentile table per histogram family — e.g.
// net.e2e_latency_ps becomes a per-port latency table.
func writeHistTables(b *strings.Builder, snap telemetry.Snapshot) {
	byName := map[string][]telemetry.MetricSnapshot{}
	var names []string
	for _, m := range snap.Metrics {
		if m.Kind != telemetry.KindHistogram || m.Hist == nil || m.Hist.Count == 0 {
			continue
		}
		if _, ok := byName[m.Name]; !ok {
			names = append(names, m.Name)
		}
		byName[m.Name] = append(byName[m.Name], m)
	}
	if len(names) == 0 {
		return
	}
	sort.Strings(names)
	b.WriteString("<h2>Latency distributions</h2>\n")
	for _, name := range names {
		fmt.Fprintf(b, "<h3>%s</h3>\n<table>\n", html.EscapeString(name))
		b.WriteString("<tr><th>labels</th><th>count</th><th>mean</th><th>p50</th><th>p90</th><th>p99</th><th>min</th><th>max</th></tr>\n")
		for _, m := range byName[name] {
			h := m.Hist
			fmt.Fprintf(b,
				"<tr><td>%s</td><td class=\"num\">%d</td><td class=\"num\">%g</td><td class=\"num\">%g</td><td class=\"num\">%g</td><td class=\"num\">%g</td><td class=\"num\">%g</td><td class=\"num\">%g</td></tr>\n",
				html.EscapeString(labelText(m.Labels)), h.Count, h.Mean, h.P50, h.P90, h.P99, h.Min, h.Max)
		}
		b.WriteString("</table>\n")
	}
}

// chartGroup is one chart: every sampled series sharing a metric name,
// split further per run (engines restart their clocks, so mixing runs on
// one time axis would fold timelines over each other).
type chartGroup struct {
	name  string
	run   int
	lines []chartLine
}

type chartLine struct {
	label string
	pts   []telemetry.Point
}

// writeCharts renders one inline-SVG line chart per (metric name, run).
func writeCharts(b *strings.Builder, series []telemetry.SeriesData) {
	groups := groupSeries(series)
	if len(groups) == 0 {
		return
	}
	b.WriteString("<h2>Time series</h2>\n")
	for _, g := range groups {
		title := g.name
		if multiRun(groups) {
			title = fmt.Sprintf("%s (run %d)", g.name, g.run)
		}
		fmt.Fprintf(b, "<h3>%s</h3>\n", html.EscapeString(title))
		writeSVG(b, g)
	}
}

func multiRun(groups []chartGroup) bool {
	for _, g := range groups {
		if g.run != 0 {
			return true
		}
	}
	return false
}

// groupSeries splits sampled series into chart groups, sorted by name then
// run; lines within a group sort by label text.
func groupSeries(series []telemetry.SeriesData) []chartGroup {
	type gkey struct {
		name string
		run  int
	}
	acc := map[gkey]*chartGroup{}
	for _, sd := range series {
		byRun := map[int][]telemetry.Point{}
		for _, p := range sd.Points {
			byRun[p.Run] = append(byRun[p.Run], p)
		}
		for run, pts := range byRun {
			if len(pts) < 2 {
				continue // a single point draws nothing useful
			}
			k := gkey{sd.Name, run}
			g, ok := acc[k]
			if !ok {
				g = &chartGroup{name: sd.Name, run: run}
				acc[k] = g
			}
			g.lines = append(g.lines, chartLine{label: labelText(sd.Labels), pts: pts})
		}
	}
	out := make([]chartGroup, 0, len(acc))
	for _, g := range acc {
		sort.Slice(g.lines, func(i, j int) bool { return g.lines[i].label < g.lines[j].label })
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].run < out[j].run
	})
	return out
}

// writeSVG renders one chart group as an inline SVG with a legend.
func writeSVG(b *strings.Builder, g chartGroup) {
	tMin, tMax := g.lines[0].pts[0].T, g.lines[0].pts[0].T
	vMin, vMax := g.lines[0].pts[0].V, g.lines[0].pts[0].V
	for _, ln := range g.lines {
		for _, p := range ln.pts {
			if p.T < tMin {
				tMin = p.T
			}
			if p.T > tMax {
				tMax = p.T
			}
			if p.V < vMin {
				vMin = p.V
			}
			if p.V > vMax {
				vMax = p.V
			}
		}
	}
	if vMin > 0 {
		vMin = 0 // anchor counts and depths at zero
	}
	if vMax == vMin {
		vMax = vMin + 1
	}
	tSpan := float64(tMax - tMin)
	if tSpan == 0 {
		tSpan = 1
	}
	plotW := float64(chartW - chartPadL - chartPadR)
	plotH := float64(chartH - chartPadT - chartPadB)
	x := func(t int64) float64 { return float64(chartPadL) + float64(t-int64(tMin))/tSpan*plotW }
	y := func(v float64) float64 {
		return float64(chartPadT) + (1-(v-vMin)/(vMax-vMin))*plotH
	}

	fmt.Fprintf(b, "<svg viewBox=\"0 0 %d %d\" width=\"%d\" height=\"%d\" role=\"img\">\n",
		chartW, chartH, chartW, chartH)
	// Axes.
	fmt.Fprintf(b, "<rect x=\"%d\" y=\"%d\" width=\"%.0f\" height=\"%.0f\" class=\"plot\"/>\n",
		chartPadL, chartPadT, plotW, plotH)
	// Y-axis extremes and x-axis extent labels.
	fmt.Fprintf(b, "<text x=\"%d\" y=\"%d\" class=\"ax\" text-anchor=\"end\">%g</text>\n",
		chartPadL-6, chartPadT+10, vMax)
	fmt.Fprintf(b, "<text x=\"%d\" y=\"%.0f\" class=\"ax\" text-anchor=\"end\">%g</text>\n",
		chartPadL-6, float64(chartPadT)+plotH, vMin)
	fmt.Fprintf(b, "<text x=\"%d\" y=\"%d\" class=\"ax\">%s</text>\n",
		chartPadL, chartH-8, html.EscapeString(psString(int64(tMin))))
	fmt.Fprintf(b, "<text x=\"%d\" y=\"%d\" class=\"ax\" text-anchor=\"end\">%s</text>\n",
		chartW-chartPadR, chartH-8, html.EscapeString(psString(int64(tMax))))
	for i, ln := range g.lines {
		color := palette[i%len(palette)]
		var pb strings.Builder
		for j, p := range ln.pts {
			if j > 0 {
				pb.WriteByte(' ')
			}
			fmt.Fprintf(&pb, "%.1f,%.1f", x(int64(p.T)), y(p.V))
		}
		fmt.Fprintf(b, "<polyline fill=\"none\" stroke=\"%s\" stroke-width=\"1.5\" points=\"%s\"/>\n",
			color, pb.String())
	}
	b.WriteString("</svg>\n")
	// Legend.
	b.WriteString("<p class=\"legend\">")
	for i, ln := range g.lines {
		if i > 0 {
			b.WriteString(" &nbsp; ")
		}
		label := ln.label
		if label == "" {
			label = "(no labels)"
		}
		fmt.Fprintf(b, "<span style=\"color:%s\">&#9632;</span> %s",
			palette[i%len(palette)], html.EscapeString(label))
	}
	b.WriteString("</p>\n")
}

// writePerf renders the wall-clock performance plane as one table plus the
// build identity. Nil doc (plane off) renders nothing, keeping reports
// deterministic by default.
func writePerf(b *strings.Builder, doc *perf.Document) {
	if doc == nil {
		return
	}
	b.WriteString("<h2>Wall-clock performance</h2>\n")
	fmt.Fprintf(b, "<p class=\"meta\">build: %s · schema %s · machine-dependent, excluded from golden comparisons</p>\n",
		html.EscapeString(doc.Build.String()), html.EscapeString(doc.Schema))
	b.WriteString("<table>\n<tr><th>metric</th><th>labels</th><th>value</th></tr>\n")
	for _, m := range doc.Metrics {
		fmt.Fprintf(b, "<tr><td>%s</td><td>%s</td><td class=\"num\">%g</td></tr>\n",
			html.EscapeString(m.Name), html.EscapeString(labelText(m.Labels)), m.Value)
	}
	b.WriteString("</table>\n")
}

// labelText renders a label map as sorted "k=v" pairs.
func labelText(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + labels[k]
	}
	return strings.Join(parts, " ")
}

// psString renders a picosecond quantity with an adaptive unit.
func psString(ps int64) string {
	switch {
	case ps >= 1_000_000_000_000:
		return fmt.Sprintf("%gs", float64(ps)/1e12)
	case ps >= 1_000_000_000:
		return fmt.Sprintf("%gms", float64(ps)/1e9)
	case ps >= 1_000_000:
		return fmt.Sprintf("%gus", float64(ps)/1e6)
	case ps >= 1_000:
		return fmt.Sprintf("%gns", float64(ps)/1e3)
	default:
		return fmt.Sprintf("%dps", ps)
	}
}

const css = `body { font: 14px/1.45 system-ui, sans-serif; margin: 2em auto; max-width: 60em; color: #1a1a1a; }
h1 { font-size: 1.5em; } h2 { font-size: 1.2em; margin-top: 1.6em; } h3 { font-size: 1em; margin-bottom: 0.3em; }
.meta { color: #666; }
table { border-collapse: collapse; margin: 0.5em 0 1.2em; }
th, td { border: 1px solid #ccc; padding: 0.25em 0.6em; text-align: left; }
th { background: #f2f2f2; } td.num { text-align: right; font-variant-numeric: tabular-nums; }
svg { display: block; }
svg .plot { fill: none; stroke: #999; stroke-width: 1; }
svg .ax { font: 10px system-ui, sans-serif; fill: #555; }
.legend { font-size: 12px; color: #333; margin: 0.2em 0 1.2em; }
`
