package report

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// buildAttrSnapshot publishes two coflows' worth of cct.attr.* series the
// way netsim does — one clean, one paying a recirculation tax and a
// failover stall.
func buildAttrSnapshot() telemetry.Snapshot {
	reg := telemetry.NewRegistry()
	set := func(cf string, bk telemetry.Bucket, v float64) {
		reg.Set(bk.SeriesName(), v, telemetry.L("net", "0"), telemetry.L("coflow", cf))
	}
	set("5", telemetry.BucketSerialization, 16000)
	set("5", telemetry.BucketPropagation, 1_000_000)
	set("5", telemetry.BucketPipeline, 1_000_000)
	set("41", telemetry.BucketSerialization, 16000)
	set("41", telemetry.BucketPropagation, 1_000_000)
	set("41", telemetry.BucketQueueing, 3_000_000)
	set("41", telemetry.BucketRecirculation, 2_000_000)
	set("41", telemetry.BucketFailoverStall, 5_000_000)
	reg.Set("exp.goodput_gbps", 42.5)
	return reg.Snapshot()
}

func renderAttr(t *testing.T) string {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, Report{Title: "attr", Snapshot: buildAttrSnapshot()}); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestAttributionSectionRenders(t *testing.T) {
	out := renderAttr(t)
	if !strings.Contains(out, "CCT attribution") {
		t.Fatal("report missing attribution section")
	}
	for _, want := range []string{
		"<th>recirculation</th>", "<th>failover_stall</th>", "<th>total (CCT)</th>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("attribution table missing %q", want)
		}
	}
	// Stacked bars: coflow 41 has five nonzero buckets, coflow 5 three.
	if n := strings.Count(out, "<rect x="); n < 8 {
		t.Errorf("attribution chart has %d bar segments, want >= 8", n)
	}
	// Rows sort by numeric coflow id: 5 before 41.
	i5 := strings.Index(out, "net 0 coflow 5")
	i41 := strings.Index(out, "net 0 coflow 41")
	if i5 < 0 || i41 < 0 || i41 < i5 {
		t.Errorf("bar rows missing or misordered: coflow5@%d coflow41@%d", i5, i41)
	}
}

func TestAttributionExcludedFromHeadlines(t *testing.T) {
	out := renderAttr(t)
	// The generic results table keeps other value series but not the
	// cct.attr.* ones (those live in the attribution section).
	res := out[strings.Index(out, "<h2>Results</h2>"):strings.Index(out, "<h2>CCT attribution</h2>")]
	if !strings.Contains(res, "exp.goodput_gbps") {
		t.Error("results table lost its headline metric")
	}
	if strings.Contains(res, telemetry.AttrSeriesPrefix) {
		t.Error("attribution series leaked into the results table")
	}
}

func TestAttributionAbsentWhenNoSeries(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Set("exp.goodput_gbps", 1)
	var buf bytes.Buffer
	if err := Write(&buf, Report{Title: "plain", Snapshot: reg.Snapshot()}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "CCT attribution") {
		t.Error("attribution section rendered without cct.attr.* series")
	}
}
