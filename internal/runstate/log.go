package runstate

import (
	"encoding/json"
	"os"
	"sync"
)

// Log is a generic crash-safe append-only record log using the same
// len+crc32c framing (and therefore the same torn-tail tolerance) as the
// run journal. The run journal records units of one run; a Log records
// whatever its owner appends — the experiment service daemon journals its
// job lifecycle through one. Every Append is a single write followed by an
// fsync, so a kill -9 loses at most the record being written, which replay
// then drops as a torn tail.
type Log struct {
	mu     sync.Mutex
	f      *os.File
	closed bool
}

// ReplayRaw parses a framed byte stream into its committed record bodies.
// Like Replay, a torn *final* line — the only damage an append-only crash
// can inflict — is tolerated and reported via torn; damage anywhere earlier
// is corruption and returns an error. Bodies are returned verbatim; the
// caller owns their schema.
func ReplayRaw(data []byte) (bodies [][]byte, torn bool, err error) {
	torn, err = replayFrames(data, func(body []byte) error {
		b := make([]byte, len(body))
		copy(b, body)
		bodies = append(bodies, b)
		return nil
	})
	if err != nil {
		return nil, false, err
	}
	return bodies, torn, nil
}

// OpenLog opens (creating if absent) the framed log at path and replays
// its committed records. A torn tail is truncated so the returned Log
// appends on a clean record boundary. The returned bodies are the
// committed records in append order; torn reports whether a tail was
// dropped.
func OpenLog(path string) (*Log, [][]byte, bool, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, false, err
	}
	var bodies [][]byte
	torn := false
	if err == nil {
		bodies, torn, err = ReplayRaw(data)
		if err != nil {
			return nil, nil, false, err
		}
		if torn {
			if terr := os.Truncate(path, int64(committedLen(data))); terr != nil {
				return nil, nil, false, terr
			}
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		return nil, nil, false, err
	}
	return &Log{f: f}, bodies, torn, nil
}

// Append frames v's JSON encoding and durably commits it (one write, one
// fsync). Safe for concurrent use.
func (l *Log) Append(v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	line := frameBody(body)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errLogClosed
	}
	if _, err := l.f.Write(line); err != nil {
		return err
	}
	return l.f.Sync()
}

// Close closes the log file. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	return l.f.Close()
}
