// Package runstate makes runs durable: a crash-safe, append-only run
// journal that records every unit of work (sweep point or experiment) as
// it begins, completes, fails, or is quarantined, plus the atomic-write
// primitive every file export in the repository goes through. Together
// they give the CLI its resume guarantee — kill -9 at any instant, rerun
// with -resume, and the completed units replay from their persisted
// payloads while incomplete ones re-enqueue, producing byte-identical
// output to an uninterrupted run.
//
// The journal applies the same recipe the simulated switch uses for warm
// standby (internal/ha, after State-Compute Replication): append a durable
// log of completed deltas, tolerate a torn tail (the analogue of in-flight
// packets lost at crash), and restore by replaying the prefix that
// committed. See docs/RESILIENCE.md for the format and semantics.
package runstate

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// AtomicWrite writes a file by streaming through write into a temporary
// file in the destination's directory, syncing it, and renaming it over
// path — so readers (and crashes at any instant) observe either the old
// complete file or the new complete file, never a truncated artifact. The
// temporary name starts with "." and ends in ".tmp", which resume cleanup
// and the journal replay ignore.
func AtomicWrite(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".*.tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	bw := bufio.NewWriter(f)
	if err := write(bw); err != nil {
		return fail(err)
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// WriteFileAtomic writes data to path via AtomicWrite.
func WriteFileAtomic(path string, data []byte) error {
	return AtomicWrite(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// Digest returns the hex sha256 of b — the integrity check the journal
// stores for unit payloads and run configurations.
func Digest(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// removeTempFiles deletes leftover AtomicWrite temporaries in dir — the
// debris a kill -9 can leave between CreateTemp and Rename.
func removeTempFiles(dir string) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && len(name) > 0 && name[0] == '.' && filepath.Ext(name) == ".tmp" {
			os.Remove(filepath.Join(dir, name))
		}
	}
}

// sanitizeUnit converts a unit id into a stable filename: unsafe bytes
// become '_' and a short digest of the raw id is appended so distinct
// units can never collide after sanitization.
func sanitizeUnit(unit string) string {
	out := make([]byte, 0, len(unit))
	for i := 0; i < len(unit); i++ {
		c := unit[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '.', c == '-', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	const maxStem = 80
	if len(out) > maxStem {
		out = out[:maxStem]
	}
	return fmt.Sprintf("%s-%s", out, Digest([]byte(unit))[:8])
}
