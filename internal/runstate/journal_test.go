package runstate

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// frameRecords frames a sequence of records exactly as the journal writes
// them, for replay tests that damage the byte stream directly.
func frameRecords(t *testing.T, recs ...Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, r := range recs {
		line, err := frame(r)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(line)
	}
	return buf.Bytes()
}

func TestFrameRoundTrip(t *testing.T) {
	rec := Record{Op: OpBegin, Unit: "point:faults[3]", Spec: "rmt loss=0.01", Seed: 42, Attempt: 2}
	line, err := frame(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := parseLine(bytes.TrimSuffix(line, []byte("\n")))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rec) {
		t.Fatalf("round trip: got %+v, want %+v", got, rec)
	}
}

// The torn-tail contract: truncating the journal at EVERY byte offset
// inside the final record must replay cleanly — the earlier records
// survive, the torn tail is dropped, and torn is reported whenever the
// final record did not commit whole.
func TestReplayToleratesTornTailAtEveryOffset(t *testing.T) {
	head := frameRecords(t,
		Record{Op: OpRun, Config: "cfg"},
		Record{Op: OpBegin, Unit: "u", Attempt: 1},
	)
	tail := frameRecords(t, Record{Op: OpDone, Unit: "u", Digest: "d"})
	for cut := 0; cut < len(tail); cut++ {
		data := append(append([]byte(nil), head...), tail[:cut]...)
		recs, torn, err := Replay(data)
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if len(recs) != 2 {
			t.Fatalf("cut at %d: %d records survived, want the 2 committed ones", cut, len(recs))
		}
		if cut > 0 && !torn {
			t.Fatalf("cut at %d: torn tail not reported", cut)
		}
	}
	// And the whole tail replays untorn.
	recs, torn, err := Replay(append(append([]byte(nil), head...), tail...))
	if err != nil || torn || len(recs) != 3 {
		t.Fatalf("intact journal: recs=%d torn=%v err=%v", len(recs), torn, err)
	}
}

// Damage before the final record is corruption, not a torn tail: replay
// must refuse rather than silently dropping committed history.
func TestReplayRejectsMidFileCorruption(t *testing.T) {
	data := frameRecords(t,
		Record{Op: OpRun},
		Record{Op: OpBegin, Unit: "u", Attempt: 1},
		Record{Op: OpDone, Unit: "u", Digest: "d"},
	)
	// Flip a byte inside the first record's JSON.
	data[10] ^= 0xFF
	if _, _, err := Replay(data); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("mid-file damage replayed without a corruption error: %v", err)
	}
}

func TestOpenFreshRefusesExistingJournal(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, OpenOptions{Config: "c"})
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := Open(dir, OpenOptions{Config: "c"}); !errors.Is(err, ErrFreshDirHasJournal) {
		t.Fatalf("second fresh open: %v, want ErrFreshDirHasJournal", err)
	}
}

func TestOpenResumeRequiresJournal(t *testing.T) {
	if _, err := Open(t.TempDir(), OpenOptions{Resume: true}); !errors.Is(err, ErrNothingToResume) {
		t.Fatalf("resume of empty dir: %v, want ErrNothingToResume", err)
	}
}

func TestOpenResumeRejectsConfigMismatch(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, OpenOptions{Config: "cfg-a"})
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := Open(dir, OpenOptions{Config: "cfg-b", Resume: true}); err == nil ||
		!strings.Contains(err.Error(), "configuration mismatch") {
		t.Fatalf("resume under a different config: %v, want mismatch refusal", err)
	}
}

// The unit lifecycle: begin/fail/done records fold into Status, completed
// payloads round-trip through LookupDone, and a resumed journal sees it
// all.
func TestJournalUnitLifecycleSurvivesResume(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, OpenOptions{Config: "c"})
	if err != nil {
		t.Fatal(err)
	}
	j.Begin("point:a", "spec-a", 7, 1)
	j.Fail("point:a", 1, "error", "boom")
	j.Begin("point:a", "spec-a", 7, 2)
	if err := j.Done("point:a", []byte(`{"ok":true}`)); err != nil {
		t.Fatal(err)
	}
	j.Begin("point:b", "spec-b", 9, 1)
	j.Close()

	r, err := Open(dir, OpenOptions{Config: "c", Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !r.Resumed() {
		t.Fatal("Resumed() false after a resume open")
	}
	a := r.Status("point:a")
	if !a.Done || a.Attempts != 2 {
		t.Fatalf("point:a status %+v, want done after 2 attempts", a)
	}
	if b := r.Status("point:b"); b.Done || b.Attempts != 1 {
		t.Fatalf("point:b status %+v, want incomplete after 1 attempt", b)
	}
	payload, ok := r.LookupDone("point:a")
	if !ok || string(payload) != `{"ok":true}` {
		t.Fatalf("LookupDone(point:a) = %q, %v", payload, ok)
	}
	if _, ok := r.LookupDone("point:b"); ok {
		t.Fatal("LookupDone(point:b) returned a payload for an incomplete unit")
	}
}

// A damaged or tampered payload file must reject the unit — a done record
// whose payload digest no longer matches silently re-runs instead of
// poisoning the merged output.
func TestLookupDoneRejectsDigestMismatch(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Done("point:x", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if _, ok := j.LookupDone("point:x"); !ok {
		t.Fatal("intact payload not restored")
	}
	if err := os.WriteFile(j.unitPath("point:x"), []byte("tampered"), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, ok := j.LookupDone("point:x"); ok {
		t.Fatal("tampered payload restored; digest check missing")
	}
}

// Quarantine is per-process poison, not permanent: the unit is recorded
// (with its dump) but stays not-done, so a resumed process re-enqueues it.
func TestQuarantineReEnqueuesOnResume(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, OpenOptions{Config: "c"})
	if err != nil {
		t.Fatal(err)
	}
	j.Begin("point:poison", "spec", 1, 1)
	j.Quarantine("point:poison", 3, "panic", "boom", []byte("flight dump"))
	j.Close()

	r, err := Open(dir, OpenOptions{Config: "c", Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	st := r.Status("point:poison")
	if st.Done {
		t.Fatal("quarantined unit came back done; it must re-enqueue on resume")
	}
	if !st.Quarantined {
		t.Fatal("quarantine record lost across resume")
	}
	dump, err := os.ReadFile(r.QuarantinePath("point:poison"))
	if err != nil || string(dump) != "flight dump" {
		t.Fatalf("quarantine dump: %q, %v", dump, err)
	}
	// A later success clears the poison.
	if err := r.Done("point:poison", []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if st := r.Status("point:poison"); !st.Done || st.Quarantined {
		t.Fatalf("status after recovery %+v, want done and unpoisoned", st)
	}
}

// A kill mid-append leaves a torn final line; the resume open must
// truncate it so the resumed process appends on a clean record boundary.
func TestResumeTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, OpenOptions{Config: "c"})
	if err != nil {
		t.Fatal(err)
	}
	j.Begin("point:a", "", 0, 1)
	j.Close()

	path := filepath.Join(dir, journalFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	committed := len(data)
	// Simulate a torn append: half a record at the tail.
	line, _ := frame(Record{Op: OpDone, Unit: "point:a", Digest: "d"})
	if err := os.WriteFile(path, append(data, line[:len(line)/2]...), 0o666); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, OpenOptions{Config: "c", Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if st := r.Status("point:a"); st.Done {
		t.Fatal("torn done record applied; an uncommitted record must be dropped")
	}
	r.Begin("point:a", "", 0, 2)
	r.Close()
	// The whole file must replay cleanly now: the torn bytes are gone and
	// the resumed records landed on a record boundary.
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) <= committed {
		t.Fatal("resumed journal did not grow past the truncation point")
	}
	if _, torn, err := Replay(data); err != nil || torn {
		t.Fatalf("journal after torn-tail resume: torn=%v err=%v", torn, err)
	}
}

func TestAtomicWriteCommitsWholeOrNothing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileAtomic(path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// A failing writer must leave the previous content and no temp litter.
	err := AtomicWrite(path, func(w io.Writer) error {
		w.Write([]byte("partial"))
		return errors.New("synthetic failure")
	})
	if err == nil {
		t.Fatal("failing write reported success")
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "v1" {
		t.Fatalf("after failed write: %q, %v; want the previous content intact", got, err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("%d directory entries after failed write, want only the original file", len(ents))
	}
}

func TestSanitizeUnitIsInjectiveEnough(t *testing.T) {
	a, b := sanitizeUnit("point:faults[0]"), sanitizeUnit("point:faults[1]")
	if a == b {
		t.Fatalf("distinct units collide after sanitizing: %q", a)
	}
	if strings.ContainsAny(a, "/:[]") {
		t.Fatalf("sanitized unit still holds path-hostile bytes: %q", a)
	}
	long := sanitizeUnit(strings.Repeat("x", 500))
	if len(long) > 100 {
		t.Fatalf("sanitized name too long for comfort: %d bytes", len(long))
	}
}
