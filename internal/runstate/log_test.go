package runstate

import (
	"os"
	"path/filepath"
	"testing"
)

type logRec struct {
	N int    `json:"n"`
	S string `json:"s"`
}

func TestLogAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.jsonl")
	l, bodies, torn, err := OpenLog(path)
	if err != nil {
		t.Fatalf("OpenLog fresh: %v", err)
	}
	if len(bodies) != 0 || torn {
		t.Fatalf("fresh log replayed %d bodies, torn=%v", len(bodies), torn)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append(logRec{N: i, S: "rec"}); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := l.Append(logRec{}); err == nil {
		t.Fatal("Append after Close succeeded")
	}

	_, bodies, torn, err = OpenLog(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if torn || len(bodies) != 5 {
		t.Fatalf("reopen: %d bodies, torn=%v; want 5, false", len(bodies), torn)
	}
}

// TestLogKillAtEveryByteOffset is the generic-log version of the journal
// crash test: a log truncated at ANY byte offset must either replay some
// committed prefix (dropping at most the torn tail) or — never — error or
// invent records.
func TestLogKillAtEveryByteOffset(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.jsonl")
	l, _, _, err := OpenLog(full)
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	for i := 0; i < n; i++ {
		if err := l.Append(logRec{N: i, S: "payload-with-some-width"}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(data); cut++ {
		path := filepath.Join(dir, "cut.jsonl")
		if err := os.WriteFile(path, data[:cut], 0o666); err != nil {
			t.Fatal(err)
		}
		l2, bodies, _, err := OpenLog(path)
		if err != nil {
			t.Fatalf("cut at %d/%d: OpenLog: %v", cut, len(data), err)
		}
		// A reopened cut log must append cleanly on the record boundary.
		if err := l2.Append(logRec{N: 99, S: "after"}); err != nil {
			t.Fatalf("cut at %d: append after reopen: %v", cut, err)
		}
		l2.Close()
		_, bodies2, torn2, err := OpenLog(path)
		if err != nil {
			t.Fatalf("cut at %d: re-reopen: %v", cut, err)
		}
		if torn2 {
			t.Fatalf("cut at %d: torn after truncate+append", cut)
		}
		if len(bodies2) != len(bodies)+1 {
			t.Fatalf("cut at %d: %d bodies after append, want %d", cut, len(bodies2), len(bodies)+1)
		}
		os.Remove(path)
	}
}

func TestReplayRawRejectsMidFileDamage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.jsonl")
	l, _, _, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append(logRec{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	data, _ := os.ReadFile(path)
	// Flip a byte inside the FIRST record: damage that append-only crashes
	// cannot produce, so it must be corruption, not a torn tail.
	data[5] ^= 0xff
	if _, _, err := ReplayRaw(data); err == nil {
		t.Fatal("ReplayRaw accepted mid-file damage")
	}
}
