package runstate

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
)

// Journal record operations.
const (
	OpRun        = "run"        // first record: config digest + argv
	OpResume     = "resume"     // appended by every -resume open
	OpBegin      = "begin"      // a unit attempt started
	OpDone       = "done"       // a unit completed; payload digest committed
	OpFail       = "fail"       // a unit attempt failed (class + error)
	OpQuarantine = "quarantine" // a unit exhausted its retry budget
	OpEnd        = "end"        // clean process shutdown committed the journal
)

// Record is one journal entry. Fields are op-specific; zero values are
// omitted from the encoding.
type Record struct {
	Op      string   `json:"op"`
	Unit    string   `json:"unit,omitempty"`
	Spec    string   `json:"spec,omitempty"`    // begin: human-readable unit spec
	Seed    int64    `json:"seed,omitempty"`    // begin: the unit's declared seed
	Attempt int      `json:"attempt,omitempty"` // begin/fail/quarantine: 1-based attempt count
	Class   string   `json:"class,omitempty"`   // fail/quarantine: panic|watchdog|budget|error
	Digest  string   `json:"digest,omitempty"`  // done: sha256 of the unit payload file
	Err     string   `json:"err,omitempty"`     // fail/quarantine: the error text
	Config  string   `json:"config,omitempty"`  // run: digest of the run configuration
	Argv    []string `json:"argv,omitempty"`    // run: command line, for humans
}

// journalFile is the journal's name inside a run directory.
const journalFile = "journal.jsonl"

// unitsDir holds one payload file per completed unit.
const unitsDir = "units"

// quarantineDir holds one flight-recorder dump per quarantined unit.
const quarantineDir = "quarantine"

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// errLogClosed is returned by appends to a closed Log or Journal.
var errLogClosed = errors.New("runstate: journal closed")

// frameBody encodes one record line: "<len> <crc32c-hex> <json>\n". The
// length and checksum cover the JSON bytes, so replay detects both torn
// tails (short final line) and bit rot (checksum mismatch mid-file).
func frameBody(body []byte) []byte {
	return []byte(fmt.Sprintf("%d %08x %s\n", len(body), crc32.Checksum(body, crcTable), body))
}

// frame encodes one run-journal record line.
func frame(rec Record) ([]byte, error) {
	body, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	return frameBody(body), nil
}

// parseFrame validates one framed line (without trailing newline) and
// returns its body bytes.
func parseFrame(line []byte) ([]byte, error) {
	s := string(line)
	sp1 := strings.IndexByte(s, ' ')
	if sp1 < 0 {
		return nil, errors.New("missing length field")
	}
	sp2 := strings.IndexByte(s[sp1+1:], ' ')
	if sp2 < 0 {
		return nil, errors.New("missing checksum field")
	}
	sp2 += sp1 + 1
	n, err := strconv.Atoi(s[:sp1])
	if err != nil {
		return nil, fmt.Errorf("bad length: %w", err)
	}
	wantCRC, err := strconv.ParseUint(s[sp1+1:sp2], 16, 32)
	if err != nil {
		return nil, fmt.Errorf("bad checksum: %w", err)
	}
	body := line[sp2+1:]
	if len(body) != n {
		return nil, fmt.Errorf("length %d, frame says %d", len(body), n)
	}
	if got := crc32.Checksum(body, crcTable); uint32(wantCRC) != got {
		return nil, fmt.Errorf("checksum %08x, frame says %08x", got, wantCRC)
	}
	return body, nil
}

// parseLine decodes one framed run-journal line (without trailing newline).
func parseLine(line []byte) (Record, error) {
	var rec Record
	body, err := parseFrame(line)
	if err != nil {
		return rec, err
	}
	if err := json.Unmarshal(body, &rec); err != nil {
		return rec, fmt.Errorf("bad record JSON: %w", err)
	}
	return rec, nil
}

// replayFrames walks data's framed lines, calling emit with each committed
// body. A frame (or emit) error on the *final* line — the only damage an
// append-only crash can inflict — is tolerated and reported via torn:
// each record commits as one write+fsync including its newline, so a
// damaged or unterminated final record never committed. Damage anywhere
// earlier is corruption and returns an error.
func replayFrames(data []byte, emit func(body []byte) error) (torn bool, err error) {
	off := 0
	for off < len(data) {
		nl := -1
		for i := off; i < len(data); i++ {
			if data[i] == '\n' {
				nl = i
				break
			}
		}
		if nl < 0 {
			return true, nil
		}
		body, perr := parseFrame(data[off:nl])
		if perr == nil {
			perr = emit(body)
		}
		if perr != nil {
			if nl == len(data)-1 {
				return true, nil
			}
			return false, fmt.Errorf("runstate: journal corrupt at byte %d: %v", off, perr)
		}
		off = nl + 1
	}
	return false, nil
}

// Replay parses a run-journal byte stream into its committed records. A
// torn tail — an invalid or incomplete *final* line — is tolerated and
// reported via torn; damage anywhere earlier is corruption and returns an
// error.
func Replay(data []byte) (recs []Record, torn bool, err error) {
	torn, err = replayFrames(data, func(body []byte) error {
		var rec Record
		if uerr := json.Unmarshal(body, &rec); uerr != nil {
			return fmt.Errorf("bad record JSON: %w", uerr)
		}
		recs = append(recs, rec)
		return nil
	})
	if err != nil {
		return nil, false, err
	}
	return recs, torn, nil
}

// UnitStatus summarizes what the journal knows about one unit after replay.
type UnitStatus struct {
	Digest      string // payload digest when done
	Done        bool
	Attempts    int // attempts recorded across all processes
	Quarantined bool
}

// Journal is the append-only run journal inside a run directory. One
// process opens it for the duration of a run; records append with
// length+checksum framing and an fsync per record, so a kill -9 loses at
// most the record being written — which replay then drops as a torn tail.
// All methods are safe for concurrent use by pool workers.
type Journal struct {
	dir     string
	mu      sync.Mutex
	f       *os.File
	closed  bool
	resumed bool
	units   map[string]*UnitStatus
}

// ErrFreshDirHasJournal is returned by Open when the directory already
// holds a journal and Resume was not requested.
var ErrFreshDirHasJournal = errors.New("runstate: run directory already contains a journal (pass -resume to continue it, or use a fresh directory)")

// ErrNothingToResume is returned by Open with Resume set when the
// directory holds no journal.
var ErrNothingToResume = errors.New("runstate: nothing to resume (no journal in run directory)")

// OpenOptions configure Open.
type OpenOptions struct {
	// Config digests the run configuration (experiment selection and every
	// knob that changes deterministic output). A resume whose config digest
	// differs from the journal's refuses to proceed: merging points run
	// under different configurations would silently corrupt the output.
	Config string
	// Argv is recorded in the run record for humans reading the journal.
	Argv []string
	// Resume replays an existing journal instead of starting fresh.
	Resume bool
}

// Open creates or resumes the journal in dir. Fresh runs require dir to
// hold no journal; resumes require one, with a matching config digest.
// Leftover atomic-write temporaries from a killed process are removed
// either way.
func Open(dir string, opt OpenOptions) (*Journal, error) {
	if err := os.MkdirAll(filepath.Join(dir, unitsDir), 0o777); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Join(dir, quarantineDir), 0o777); err != nil {
		return nil, err
	}
	removeTempFiles(dir)
	removeTempFiles(filepath.Join(dir, unitsDir))
	removeTempFiles(filepath.Join(dir, quarantineDir))

	path := filepath.Join(dir, journalFile)
	j := &Journal{dir: dir, units: make(map[string]*UnitStatus), resumed: opt.Resume}
	data, err := os.ReadFile(path)
	switch {
	case err == nil && !opt.Resume:
		return nil, ErrFreshDirHasJournal
	case os.IsNotExist(err) && opt.Resume:
		return nil, ErrNothingToResume
	case err != nil && !os.IsNotExist(err):
		return nil, err
	}

	if opt.Resume {
		recs, torn, rerr := Replay(data)
		if rerr != nil {
			return nil, rerr
		}
		if len(recs) == 0 || recs[0].Op != OpRun {
			return nil, fmt.Errorf("runstate: journal in %s has no run record", dir)
		}
		if opt.Config != "" && recs[0].Config != opt.Config {
			return nil, fmt.Errorf("runstate: resume configuration mismatch: journal was recorded with config %s, this invocation digests to %s (same flags required)",
				short(recs[0].Config), short(opt.Config))
		}
		for _, rec := range recs {
			j.apply(rec)
		}
		if torn {
			// Re-terminate the file at the last committed record so the
			// resumed process appends framed records on a clean boundary.
			keep := committedLen(data)
			if werr := os.Truncate(path, int64(keep)); werr != nil {
				return nil, werr
			}
		}
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		return nil, err
	}
	j.f = f
	first := Record{Op: OpRun, Config: opt.Config, Argv: opt.Argv}
	if opt.Resume {
		first = Record{Op: OpResume, Config: opt.Config, Argv: opt.Argv}
	}
	if err := j.append(first); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// short abbreviates a digest for error text.
func short(d string) string {
	if len(d) > 12 {
		return d[:12] + "…"
	}
	if d == "" {
		return "(empty)"
	}
	return d
}

// committedLen returns the byte length of data's committed prefix — the
// bytes up to and including the last record that replays cleanly.
func committedLen(data []byte) int {
	off, last := 0, 0
	for off < len(data) {
		nl := -1
		for i := off; i < len(data); i++ {
			if data[i] == '\n' {
				nl = i
				break
			}
		}
		if nl < 0 {
			break
		}
		if _, err := parseLine(data[off:nl]); err != nil {
			break
		}
		last = nl + 1
		off = nl + 1
	}
	return last
}

// apply folds one replayed record into the unit map.
func (j *Journal) apply(rec Record) {
	status := func(unit string) *UnitStatus {
		st, ok := j.units[unit]
		if !ok {
			st = &UnitStatus{}
			j.units[unit] = st
		}
		return st
	}
	switch rec.Op {
	case OpBegin:
		st := status(rec.Unit)
		if rec.Attempt > st.Attempts {
			st.Attempts = rec.Attempt
		}
	case OpDone:
		st := status(rec.Unit)
		st.Done, st.Digest, st.Quarantined = true, rec.Digest, false
	case OpFail:
		st := status(rec.Unit)
		if rec.Attempt > st.Attempts {
			st.Attempts = rec.Attempt
		}
	case OpQuarantine:
		// Quarantine poisons the unit for the run that recorded it; a
		// resume re-enqueues it (a fresh process may well succeed), so the
		// unit is simply not Done.
		status(rec.Unit).Quarantined = true
	}
}

// Resumed reports whether this journal continues an earlier process.
func (j *Journal) Resumed() bool { return j.resumed }

// Status returns what the replayed journal recorded about unit.
func (j *Journal) Status(unit string) UnitStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	if st, ok := j.units[unit]; ok {
		return *st
	}
	return UnitStatus{}
}

// append frames and durably writes one record. Caller must not hold j.mu.
func (j *Journal) append(rec Record) error {
	line, err := frame(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errLogClosed
	}
	j.apply(rec)
	if _, err := j.f.Write(line); err != nil {
		return err
	}
	return j.f.Sync()
}

// unitPath returns the payload file for unit.
func (j *Journal) unitPath(unit string) string {
	return filepath.Join(j.dir, unitsDir, sanitizeUnit(unit)+".json")
}

// QuarantinePath returns the dump file recorded for a quarantined unit.
func (j *Journal) QuarantinePath(unit string) string {
	return filepath.Join(j.dir, quarantineDir, sanitizeUnit(unit)+".txt")
}

// Begin records that an attempt at unit started.
func (j *Journal) Begin(unit, spec string, seed int64, attempt int) {
	j.append(Record{Op: OpBegin, Unit: unit, Spec: spec, Seed: seed, Attempt: attempt})
}

// Done atomically persists the unit's payload and commits a done record
// carrying its digest. The payload file lands (rename) before the record
// appends, so a done record always points at a complete payload.
func (j *Journal) Done(unit string, payload []byte) error {
	if err := WriteFileAtomic(j.unitPath(unit), payload); err != nil {
		return err
	}
	return j.append(Record{Op: OpDone, Unit: unit, Digest: Digest(payload)})
}

// Fail records one failed attempt.
func (j *Journal) Fail(unit string, attempt int, class, errMsg string) {
	j.append(Record{Op: OpFail, Unit: unit, Attempt: attempt, Class: class, Err: errMsg})
}

// Quarantine records that unit exhausted its retry budget, persisting the
// post-mortem dump (typically the flight-recorder ring) alongside.
func (j *Journal) Quarantine(unit string, attempts int, class, errMsg string, dump []byte) {
	if len(dump) > 0 {
		WriteFileAtomic(j.QuarantinePath(unit), dump)
	}
	j.append(Record{Op: OpQuarantine, Unit: unit, Attempt: attempts, Class: class, Err: errMsg})
}

// LookupDone returns the persisted payload for a completed unit. The
// payload's digest must match the done record; a mismatch (damaged or
// tampered payload file) rejects the unit so it re-runs rather than
// poisoning the merged output.
func (j *Journal) LookupDone(unit string) ([]byte, bool) {
	j.mu.Lock()
	st, ok := j.units[unit]
	if ok {
		cp := *st
		st = &cp
	}
	j.mu.Unlock()
	if !ok || !st.Done {
		return nil, false
	}
	b, err := os.ReadFile(j.unitPath(unit))
	if err != nil || Digest(b) != st.Digest {
		return nil, false
	}
	return b, true
}

// Close commits an end record and closes the journal file. Idempotent:
// the shutdown path and the normal exit path may both call it.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.mu.Unlock()
	err := j.append(Record{Op: OpEnd})
	j.mu.Lock()
	j.closed = true
	cerr := j.f.Close()
	j.mu.Unlock()
	if err != nil {
		return err
	}
	return cerr
}
