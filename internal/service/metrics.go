package service

import (
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// svcMetrics is the daemon's own observability surface: lifecycle counters
// and queue gauges, mirrored in atomics so the HTTP plane's /metrics
// snapshots never touch the daemon mutex (the executor may hold it while a
// scrape arrives). The series live in a dedicated registry, separate from
// both the deterministic experiment hubs (which must stay byte-identical
// to batch runs) and the perf plane (machine-dependent wall-clock facts).
type svcMetrics struct {
	submitted   atomic.Uint64
	shed        atomic.Uint64
	done        atomic.Uint64
	failed      atomic.Uint64
	quarantined atomic.Uint64
	cancelled   atomic.Uint64
	recovered   atomic.Uint64
	retried     atomic.Uint64
	queueDepth  atomic.Int64
	queueCap    atomic.Int64
	running     atomic.Int64
	draining    atomic.Int64
	started     time.Time

	reg *telemetry.Registry
}

func newSvcMetrics() *svcMetrics {
	m := &svcMetrics{started: time.Now()}
	reg := telemetry.NewRegistry()
	reg.ObserveFunc("service.jobs.submitted", func() float64 { return float64(m.submitted.Load()) })
	reg.ObserveFunc("service.jobs.shed", func() float64 { return float64(m.shed.Load()) })
	reg.ObserveFunc("service.jobs.done", func() float64 { return float64(m.done.Load()) })
	reg.ObserveFunc("service.jobs.failed", func() float64 { return float64(m.failed.Load()) })
	reg.ObserveFunc("service.jobs.quarantined", func() float64 { return float64(m.quarantined.Load()) })
	reg.ObserveFunc("service.jobs.cancelled", func() float64 { return float64(m.cancelled.Load()) })
	reg.ObserveFunc("service.jobs.recovered", func() float64 { return float64(m.recovered.Load()) })
	reg.ObserveFunc("service.jobs.retried", func() float64 { return float64(m.retried.Load()) })
	reg.ObserveFunc("service.jobs.running", func() float64 { return float64(m.running.Load()) })
	reg.ObserveFunc("service.queue.depth", func() float64 { return float64(m.queueDepth.Load()) })
	reg.ObserveFunc("service.queue.cap", func() float64 { return float64(m.queueCap.Load()) })
	reg.ObserveFunc("service.draining", func() float64 { return float64(m.draining.Load()) })
	reg.ObserveFunc("service.uptime_s", func() float64 { return time.Since(m.started).Seconds() })
	m.reg = reg
	return m
}

// Registry exposes the service metrics registry (for /metrics and tests).
func (d *Daemon) Registry() *telemetry.Registry { return d.met.reg }
