package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/runstate"
)

// JobJournalSchema identifies the job journal record layout.
const JobJournalSchema = "adcp-job/1"

// jobJournalFile is the journal's filename inside the service directory.
const jobJournalFile = "jobs.jsonl"

// Journal record ops, in lifecycle order. "svc" is the header record every
// journal starts with; the rest mirror the FSM edges one-to-one, so a
// replayed journal IS the queue state.
const (
	opSvc        = "svc"        // header: schema + queue capacity at creation
	opSubmit     = "submit"     // job accepted: id + full spec
	opAdmit      = "admit"      // executor claimed the job
	opStart      = "start"      // attempt N began executing
	opDone       = "done"       // results committed; out/metrics digests recorded
	opFail       = "fail"       // terminal failure (attempts exhausted, class "error")
	opQuarantine = "quarantine" // terminal quarantine (poison class or crash loop)
	opCancel     = "cancel"     // terminal cancellation via the API
)

// jobRecord is one line of the job journal. Op selects which fields are
// meaningful; unknown fields in old journals are ignored, unknown ops are
// an error (schema bump territory).
type jobRecord struct {
	Op     string `json:"op"`
	Schema string `json:"schema,omitempty"` // opSvc only
	Cap    int    `json:"cap,omitempty"`    // opSvc: queue capacity

	ID      string `json:"id,omitempty"`
	Spec    *Spec  `json:"spec,omitempty"`    // opSubmit
	Attempt int    `json:"attempt,omitempty"` // opStart: 1-based attempt number
	Class   string `json:"class,omitempty"`   // opFail/opQuarantine: failure class
	Err     string `json:"err,omitempty"`     // opFail/opQuarantine/opCancel: message

	OutDigest     string `json:"out_digest,omitempty"`     // opDone: sha256 of out.txt
	MetricsDigest string `json:"metrics_digest,omitempty"` // opDone: sha256 of metrics.json
}

// jobJournal wraps the generic crash-safe log with the adcp-job/1 record
// vocabulary. One exists per daemon; every FSM transition appends (and
// fsyncs) exactly one record before the in-memory state changes, so the
// disk is never behind the truth a crash must recover.
type jobJournal struct {
	log *runstate.Log
}

// openJobJournal opens (creating if needed) the job journal under dir and
// replays its committed records. A fresh journal gets the header record; an
// existing one must lead with a matching header or the open fails — a
// foreign or future-schema directory should refuse loudly, not half-load.
func openJobJournal(dir string) (*jobJournal, []jobRecord, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, nil, err
	}
	log, bodies, _, err := runstate.OpenLog(filepath.Join(dir, jobJournalFile))
	if err != nil {
		return nil, nil, err
	}
	recs := make([]jobRecord, 0, len(bodies))
	for i, b := range bodies {
		var r jobRecord
		if err := json.Unmarshal(b, &r); err != nil {
			log.Close()
			return nil, nil, fmt.Errorf("service: job journal record %d: %w", i, err)
		}
		recs = append(recs, r)
	}
	j := &jobJournal{log: log}
	if len(recs) == 0 {
		if err := j.append(jobRecord{Op: opSvc, Schema: JobJournalSchema}); err != nil {
			log.Close()
			return nil, nil, err
		}
		return j, nil, nil
	}
	if recs[0].Op != opSvc || recs[0].Schema != JobJournalSchema {
		log.Close()
		return nil, nil, fmt.Errorf("service: job journal has schema %q, want %q", recs[0].Schema, JobJournalSchema)
	}
	return j, recs[1:], nil
}

func (j *jobJournal) append(r jobRecord) error { return j.log.Append(r) }

func (j *jobJournal) close() error { return j.log.Close() }

// replayJob is a job's state as reconstructed from the journal: the fold
// of its records over the FSM.
type replayJob struct {
	id      string
	spec    Spec
	state   State
	starts  int // total opStart records ever seen (crash-loop detector input)
	attempt int // latest attempt number
	class   string
	errMsg  string
	outDig  string
	metDig  string
}

// replayJobs folds journal records into per-job states, returning them in
// submission order. A record for an unknown id or an illegal FSM edge is
// corruption — the journal only ever records transitions the live daemon
// validated, so replay re-validates them.
func replayJobs(recs []jobRecord) ([]*replayJob, error) {
	byID := make(map[string]*replayJob)
	var order []*replayJob
	for i, r := range recs {
		if r.Op == opSubmit {
			if byID[r.ID] != nil {
				return nil, fmt.Errorf("service: job journal record %d: duplicate submit for %s", i, r.ID)
			}
			if r.Spec == nil {
				return nil, fmt.Errorf("service: job journal record %d: submit without spec", i)
			}
			job := &replayJob{id: r.ID, spec: *r.Spec, state: StateQueued}
			byID[r.ID] = job
			order = append(order, job)
			continue
		}
		job := byID[r.ID]
		if job == nil {
			return nil, fmt.Errorf("service: job journal record %d: %s for unknown job %q", i, r.Op, r.ID)
		}
		var next State
		switch r.Op {
		case opAdmit:
			next = StateAdmitted
		case opStart:
			next = StateRunning
			job.starts++
			job.attempt = r.Attempt
		case opDone:
			next = StateDone
			job.outDig = r.OutDigest
			job.metDig = r.MetricsDigest
		case opFail:
			next = StateFailed
			job.class, job.errMsg = r.Class, r.Err
		case opQuarantine:
			next = StateQuarantined
			job.class, job.errMsg = r.Class, r.Err
		case opCancel:
			next = StateCancelled
			job.errMsg = r.Err
		default:
			return nil, fmt.Errorf("service: job journal record %d: unknown op %q", i, r.Op)
		}
		// opStart on an already-running job is legal: it is what a crash
		// between attempts leaves behind (start N, crash, start N again
		// after recovery re-queues it would emit admit first — but a retry
		// within one daemon life emits start N+1 directly).
		if job.state == StateRunning && next == StateRunning {
			continue
		}
		if !canTransition(job.state, next) {
			return nil, fmt.Errorf("service: job journal record %d: illegal transition %s → %s for %s", i, job.state, next, job.id)
		}
		job.state = next
	}
	return order, nil
}
