package service

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/runstate"
)

// testExps builds a fast fake experiment table. gate, when non-nil, makes
// the "slow" experiment block until the gate channel closes — the lever
// the drain/cancel/shed tests use to hold a job in the running state.
// failures, when non-nil, makes "flaky" fail (class "error") as long as
// the counter it points to is > 0, decrementing per attempt.
func testExps(gate chan struct{}, failures *int32) []Experiment {
	var mu sync.Mutex
	return []Experiment{
		{Name: "alpha", Desc: "writes a fixed table", Run: func(w io.Writer) error {
			fmt.Fprintln(w, "ALPHA  col1  col2")
			fmt.Fprintln(w, "row    1     2")
			return nil
		}},
		{Name: "beta", Desc: "writes another table", Run: func(w io.Writer) error {
			fmt.Fprintln(w, "BETA  x")
			return nil
		}},
		{Name: "slow", Desc: "blocks until the test releases it", Run: func(w io.Writer) error {
			if gate != nil {
				<-gate
			}
			fmt.Fprintln(w, "SLOW done")
			return nil
		}},
		{Name: "flaky", Desc: "fails while the failure budget lasts", Run: func(w io.Writer) error {
			mu.Lock()
			defer mu.Unlock()
			if failures != nil && *failures > 0 {
				*failures--
				return errors.New("transient fake failure")
			}
			fmt.Fprintln(w, "FLAKY recovered")
			return nil
		}},
		{Name: "poison", Desc: "always dies with a poison class", Run: func(w io.Writer) error {
			return errors.New("sim: event budget exhausted (fake)")
		}},
	}
}

func newTestDaemon(t *testing.T, dir string, mod func(*Config)) *Daemon {
	t.Helper()
	cfg := Config{
		Dir:          dir,
		Experiments:  testExps(nil, nil),
		QueueCap:     8,
		MaxAttempts:  1,
		Parallel:     1,
		RetryBackoff: time.Millisecond,
		Sleep:        func(time.Duration) {},
	}
	if mod != nil {
		mod(&cfg)
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	t.Cleanup(func() { d.Close() })
	return d
}

func waitState(t *testing.T, d *Daemon, id string, want State) JobView {
	t.Helper()
	v, err := d.Wait(id)
	if err != nil {
		t.Fatalf("wait %s: %v", id, err)
	}
	if v.State != want {
		t.Fatalf("job %s ended %s (class %q, err %q), want %s", id, v.State, v.Class, v.Error, want)
	}
	return v
}

func TestJobLifecycleDone(t *testing.T) {
	dir := t.TempDir()
	d := newTestDaemon(t, dir, nil)
	id, err := d.Submit(Spec{Exps: []string{"alpha", "beta"}})
	if err != nil {
		t.Fatal(err)
	}
	v := waitState(t, d, id, StateDone)

	out := string(readFile(t, filepath.Join(dir, "jobs", id, jobOutFile)))
	want := "ALPHA  col1  col2\nrow    1     2\n\nBETA  x\n\n"
	if out != want {
		t.Fatalf("out.txt = %q, want %q", out, want)
	}
	if got := runstate.Digest([]byte(out)); got != v.OutDigest {
		t.Fatalf("out digest %s != journaled %s", got, v.OutDigest)
	}
	if _, err := os.Stat(filepath.Join(dir, "jobs", id, jobMetricsFile)); err != nil {
		t.Fatalf("metrics.json missing: %v", err)
	}
	if v.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", v.Attempts)
	}
}

func TestSpecValidation(t *testing.T) {
	d := newTestDaemon(t, t.TempDir(), nil)
	if _, err := d.Submit(Spec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
	if _, err := d.Submit(Spec{Exps: []string{"nonsense"}}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestAdmissionControlSheds(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	d := newTestDaemon(t, t.TempDir(), func(c *Config) {
		c.Experiments = testExps(gate, nil)
		c.QueueCap = 2
	})
	// First job occupies the executor; second fills the queue; third sheds.
	if _, err := d.Submit(Spec{Exps: []string{"slow"}}); err != nil {
		t.Fatal(err)
	}
	waitRunning(t, d)
	if _, err := d.Submit(Spec{Exps: []string{"alpha"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Submit(Spec{Exps: []string{"alpha"}}); !errors.Is(err, ErrOverCapacity) {
		t.Fatalf("third submit: %v, want ErrOverCapacity", err)
	}
	if d.met.shed.Load() != 1 {
		t.Fatalf("shed counter = %d, want 1", d.met.shed.Load())
	}
}

func TestRetryThenSuccess(t *testing.T) {
	failures := int32(1)
	d := newTestDaemon(t, t.TempDir(), func(c *Config) {
		c.Experiments = testExps(nil, &failures)
		c.MaxAttempts = 3
	})
	id, err := d.Submit(Spec{Exps: []string{"flaky"}})
	if err != nil {
		t.Fatal(err)
	}
	v := waitState(t, d, id, StateDone)
	if v.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one failure, one success)", v.Attempts)
	}
}

// A poison job — every attempt dies with a poison class — is quarantined
// after its attempts, and the daemon keeps serving the next job.
func TestPoisonJobQuarantinedServiceSurvives(t *testing.T) {
	dir := t.TempDir()
	d := newTestDaemon(t, dir, func(c *Config) { c.MaxAttempts = 2 })
	pid, err := d.Submit(Spec{Exps: []string{"poison"}})
	if err != nil {
		t.Fatal(err)
	}
	aid, err := d.Submit(Spec{Exps: []string{"alpha"}})
	if err != nil {
		t.Fatal(err)
	}
	v := waitState(t, d, pid, StateQuarantined)
	if v.Class != "budget" {
		t.Fatalf("quarantine class = %q, want budget", v.Class)
	}
	if v.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", v.Attempts)
	}
	waitState(t, d, aid, StateDone)
	if _, err := os.Stat(filepath.Join(dir, "jobs", pid, jobFlightFile)); err != nil {
		t.Fatalf("quarantined job has no flight dump: %v", err)
	}
}

// A job whose failure class is a plain error fails rather than
// quarantines.
func TestPlainErrorFails(t *testing.T) {
	failures := int32(100)
	d := newTestDaemon(t, t.TempDir(), func(c *Config) {
		c.Experiments = testExps(nil, &failures)
		c.MaxAttempts = 2
	})
	id, err := d.Submit(Spec{Exps: []string{"flaky"}})
	if err != nil {
		t.Fatal(err)
	}
	v := waitState(t, d, id, StateFailed)
	if v.Class != "error" {
		t.Fatalf("class = %q, want error", v.Class)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	d := newTestDaemon(t, t.TempDir(), func(c *Config) { c.Experiments = testExps(gate, nil) })
	if _, err := d.Submit(Spec{Exps: []string{"slow"}}); err != nil {
		t.Fatal(err)
	}
	waitRunning(t, d)
	id, err := d.Submit(Spec{Exps: []string{"alpha"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Cancel(id); err != nil {
		t.Fatal(err)
	}
	waitState(t, d, id, StateCancelled)
	if err := d.Cancel(id); !errors.Is(err, ErrTerminal) {
		t.Fatalf("second cancel: %v, want ErrTerminal", err)
	}
	if err := d.Cancel("j9999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cancel unknown: %v, want ErrNotFound", err)
	}
}

func TestCancelRunningJob(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	d := newTestDaemon(t, t.TempDir(), func(c *Config) { c.Experiments = testExps(gate, nil) })
	id, err := d.Submit(Spec{Exps: []string{"slow"}})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, d)
	if err := d.Cancel(id); err != nil {
		t.Fatal(err)
	}
	waitState(t, d, id, StateCancelled)
}

// Drain with an idle queue completes clean; submissions during drain are
// refused.
func TestDrainIdle(t *testing.T) {
	d := newTestDaemon(t, t.TempDir(), nil)
	id, err := d.Submit(Spec{Exps: []string{"alpha"}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, d, id, StateDone)
	if clean := d.Drain(time.Second); !clean {
		t.Fatal("idle drain reported unclean")
	}
	if _, err := d.Submit(Spec{Exps: []string{"alpha"}}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain: %v, want ErrDraining", err)
	}
}

// Drain past its deadline checkpoints the running job: no terminal record,
// so a new daemon on the same directory recovers and finishes it — and the
// output is byte-identical to an undisturbed run.
func TestDrainCheckpointAndResume(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	d := newTestDaemon(t, dir, func(c *Config) { c.Experiments = testExps(gate, nil) })
	// Selection resolves in table order (as the CLI's does), so "slow"
	// runs between beta's completion and flaky: the drain checkpoint lands
	// mid-job with two experiments already journaled.
	id, err := d.Submit(Spec{Exps: []string{"alpha", "beta", "slow"}})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, d)
	if clean := d.Drain(50 * time.Millisecond); clean {
		t.Fatal("drain of a gated job reported clean")
	}
	close(gate) // release the abandoned goroutine
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life: the job must come back, resume (alpha restores from the
	// run journal), and complete.
	d2 := newTestDaemon(t, dir, nil)
	v, err := d2.Get(id)
	if err != nil {
		t.Fatalf("job %s lost across restart: %v", id, err)
	}
	if !v.Recovered {
		t.Fatal("job not flagged recovered")
	}
	v = waitState(t, d2, id, StateDone)
	out := string(readFile(t, filepath.Join(dir, "jobs", id, jobOutFile)))
	want := "ALPHA  col1  col2\nrow    1     2\n\nBETA  x\n\nSLOW done\n\n"
	if out != want {
		t.Fatalf("resumed out.txt = %q, want %q", out, want)
	}
	if v.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one checkpointed, one resumed)", v.Attempts)
	}
}

// Queued (never-started) jobs survive a restart too, in order.
func TestQueuedJobsRecoverInOrder(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	d := newTestDaemon(t, dir, func(c *Config) { c.Experiments = testExps(gate, nil) })
	if _, err := d.Submit(Spec{Exps: []string{"slow"}}); err != nil {
		t.Fatal(err)
	}
	waitRunning(t, d)
	idA, _ := d.Submit(Spec{Exps: []string{"alpha"}})
	idB, _ := d.Submit(Spec{Exps: []string{"beta"}})
	close(gate)
	d.Drain(50 * time.Millisecond)
	d.Close()

	d2 := newTestDaemon(t, dir, nil)
	for _, id := range []string{idA, idB} {
		waitState(t, d2, id, StateDone)
	}
	views := d2.List()
	if len(views) != 3 {
		t.Fatalf("recovered %d jobs, want 3", len(views))
	}
	if views[1].ID != idA || views[2].ID != idB {
		t.Fatalf("submission order lost: %s, %s", views[1].ID, views[2].ID)
	}
}

// A job whose starts keep killing daemons is quarantined at recovery.
func TestCrashLoopQuarantine(t *testing.T) {
	dir := t.TempDir()
	// Forge a journal recording three starts and no terminal state.
	jj, _, err := openJobJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := &Spec{Exps: []string{"alpha"}}
	for _, r := range []jobRecord{
		{Op: opSubmit, ID: "j0001", Spec: spec},
		{Op: opAdmit, ID: "j0001"},
		{Op: opStart, ID: "j0001", Attempt: 1},
		{Op: opStart, ID: "j0001", Attempt: 2},
		{Op: opStart, ID: "j0001", Attempt: 3},
	} {
		if err := jj.append(r); err != nil {
			t.Fatal(err)
		}
	}
	jj.close()

	d := newTestDaemon(t, dir, func(c *Config) { c.CrashLoopLimit = 3 })
	v, err := d.Get("j0001")
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StateQuarantined || v.Class != "crash-loop" {
		t.Fatalf("crash-looping job recovered as %s/%s, want quarantined/crash-loop", v.State, v.Class)
	}
	// And the quarantine is itself durable.
	d.Close()
	d2 := newTestDaemon(t, dir, nil)
	v, _ = d2.Get("j0001")
	if v.State != StateQuarantined {
		t.Fatalf("quarantine not durable: %s", v.State)
	}
}

// Job-level timeout: a gated job with a tiny timeout is killed by the
// watchdog and quarantined (watchdog is a poison class).
func TestJobTimeoutQuarantines(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	d := newTestDaemon(t, t.TempDir(), func(c *Config) { c.Experiments = testExps(gate, nil) })
	id, err := d.Submit(Spec{Exps: []string{"slow"}, TimeoutMs: 30, MaxAttempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	v := waitState(t, d, id, StateQuarantined)
	if v.Class != "watchdog" {
		t.Fatalf("class = %q, want watchdog", v.Class)
	}
}

// The byte-identity invariant at the package level: a daemon job's out.txt
// matches running the same experiments through a second, undisturbed
// daemon — even when the first run was interrupted between experiments.
func TestInterruptedJobOutputByteIdentical(t *testing.T) {
	want := t.TempDir()
	dw := newTestDaemon(t, want, nil)
	wid, err := dw.Submit(Spec{Exps: []string{"alpha", "beta"}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, dw, wid, StateDone)
	wantOut := readFile(t, filepath.Join(want, "jobs", wid, jobOutFile))

	dir := t.TempDir()
	gate := make(chan struct{})
	d := newTestDaemon(t, dir, func(c *Config) { c.Experiments = testExps(gate, nil) })
	id, err := d.Submit(Spec{Exps: []string{"alpha", "beta", "slow"}})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, d)
	d.Drain(50 * time.Millisecond) // checkpoint mid-job
	close(gate)
	d.Close()

	d2 := newTestDaemon(t, dir, nil)
	waitState(t, d2, id, StateDone)
	gotOut := readFile(t, filepath.Join(dir, "jobs", id, jobOutFile))
	// The interrupted job ran one extra experiment (slow) at the end;
	// its prefix must still match the undisturbed job byte for byte.
	if !strings.HasPrefix(string(gotOut), string(wantOut)) {
		t.Fatalf("resumed output diverges from undisturbed run:\nwant prefix:\n%s\ngot:\n%s", wantOut, gotOut)
	}
}

func waitRunning(t *testing.T, d *Daemon) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		d.mu.Lock()
		running := d.running != nil && d.running.state == StateRunning
		d.mu.Unlock()
		if running {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("no job reached the running state in time")
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
