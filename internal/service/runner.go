package service

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/experiments"
	"repro/internal/parallel"
	"repro/internal/perf"
	"repro/internal/runstate"
	"repro/internal/telemetry"
)

// Per-job artifact filenames under <dir>/jobs/<id>/.
const (
	jobRunDir      = "run"          // run journal directory (runstate format)
	jobOutFile     = "out.txt"      // experiment tables, byte-identical to the CLI
	jobMetricsFile = "metrics.json" // deterministic metrics export (adcp-metrics)
	jobFlightFile  = "flight.txt"   // flight-recorder dump of the last failed attempt
)

// attemptOutcome is what one execution attempt reports back to the retry
// loop in runJob.
type attemptOutcome struct {
	outDigest     string
	metricsDigest string
	err           error  // nil = every experiment succeeded and outputs committed
	class         string // parallel.Classify of the worst failure
}

// classRank orders failure classes by how strongly they indict the job
// itself: a panic or watchdog trip or budget exhaustion is poison (the job
// would hurt the next attempt too), a plain error is just a failure.
func classRank(class string) int {
	switch class {
	case "panic":
		return 3
	case "watchdog":
		return 2
	case "budget":
		return 1
	}
	return 0
}

// executeAttempt runs one attempt of a job: open (or resume) the job's
// private run journal, run the spec's experiments exactly as the batch CLI
// does — restored units replay, fresh ones run in a mirror hub and persist
// before merging — then commit out.txt and metrics.json atomically.
//
// The output contract is the whole point: a done job's out.txt is
// byte-identical to `adcpsim -exp <sel>` stdout and its metrics.json to
// the CLI's -metrics export, at any attempt count and across any number of
// daemon crashes, because both planes share the same journal schema,
// restore rules, and table framing.
func (d *Daemon) executeAttempt(ctx context.Context, j *job, attempt int) attemptOutcome {
	jobDir := d.jobDir(j.id)
	if err := os.MkdirAll(jobDir, 0o777); err != nil {
		return attemptOutcome{err: err, class: "error"}
	}
	runDir := filepath.Join(jobDir, jobRunDir)
	jr, err := d.openRunJournal(runDir, j)
	if err != nil {
		return attemptOutcome{err: err, class: "error"}
	}
	// The experiment layer's journal knob is process-global; serial job
	// execution (see package comment) is what makes this safe. Clearing it
	// and closing the journal before returning fences off any goroutine a
	// tripped watchdog abandoned — its late unit writes fail on the closed
	// journal instead of landing in the next job's.
	experiments.SetJournal(jr)
	defer experiments.SetJournal(nil)
	defer jr.Close()

	budget := j.spec.EventBudget
	if budget == 0 {
		budget = d.cfg.EventBudget
	}
	tel := &telemetry.Telemetry{
		Metrics: telemetry.NewRegistry(),
		Flight:  telemetry.NewFlightRecorder(0),
	}

	var out bytes.Buffer
	var failed []string
	var firstErr error
	worst := ""
	for _, e := range d.resolve(j.spec) {
		if ctx.Err() != nil {
			// Deadline or cancellation mid-job: remaining experiments are
			// skipped-as-failed, exactly like the CLI under -exp-timeout.
			d.setProgress(j, e.Name, "failed")
			failed = append(failed, e.Name)
			if firstErr == nil {
				firstErr = &experiments.WatchdogError{Name: e.Name, Err: ctx.Err()}
				worst = "watchdog"
			}
			continue
		}
		if restored, hub, ok := RestoreExperiment(jr, e.Name, true); ok {
			out.WriteString(restored)
			if hub != nil {
				telemetry.Merge(tel, hub)
			}
			out.WriteByte('\n')
			perf.Active().ResumeRestored()
			d.setProgress(j, e.Name, "restored")
			d.publishSnapshot(j, tel)
			continue
		}
		d.setProgress(j, e.Name, "running")
		unit := ExpUnit(e.Name)
		expAttempt := jr.Status(unit).Attempts + 1
		jr.Begin(unit, e.Desc, 0, expAttempt)
		// Run in a mirror hub with captured output, and persist BEFORE
		// merging: Merge renumbers the mirror's instance labels in place to
		// the live hub's sequence, so a later encode would journal global
		// numbering and double-shift on restore.
		mirror := telemetry.Mirror(tel)
		capt := NewCaptureOut(io.Discard)
		var runErr error
		telemetry.WithDefault(mirror, func() {
			runErr = experiments.Run(ctx, e.Name, budget, func() error { return e.Run(capt) })
		})
		if runErr == nil {
			PersistExperiment(jr, e.Name, capt.String(), mirror, true, d.cfg.Stderr)
			telemetry.Merge(tel, mirror)
			out.WriteString(capt.String())
			out.WriteByte('\n')
			d.setProgress(j, e.Name, "done")
		} else {
			class := parallel.Classify(runErr)
			jr.Fail(unit, expAttempt, class, runErr.Error())
			telemetry.Merge(tel, mirror)
			d.setProgress(j, e.Name, "failed")
			failed = append(failed, e.Name)
			if firstErr == nil {
				firstErr = runErr
			}
			if worst == "" || classRank(class) > classRank(worst) {
				worst = class
			}
			fmt.Fprintf(d.cfg.Stderr, "service: job %s experiment %s failed: %v\n", j.id, e.Name, runErr)
		}
		d.publishSnapshot(j, tel)
	}

	// Commit outputs even on a failed attempt: partial tables and metrics
	// are exactly what a human debugging the failure wants, and the final
	// attempt's files are the job's post-mortem record.
	outBytes := out.Bytes()
	if err := runstate.AtomicWrite(filepath.Join(jobDir, jobOutFile), func(w io.Writer) error {
		_, werr := w.Write(outBytes)
		return werr
	}); err != nil {
		return attemptOutcome{err: err, class: "error"}
	}
	var metBuf bytes.Buffer
	if err := tel.Metrics.WriteJSON(&metBuf); err != nil {
		return attemptOutcome{err: err, class: "error"}
	}
	metBytes := metBuf.Bytes()
	if err := runstate.AtomicWrite(filepath.Join(jobDir, jobMetricsFile), func(w io.Writer) error {
		_, werr := w.Write(metBytes)
		return werr
	}); err != nil {
		return attemptOutcome{err: err, class: "error"}
	}

	if len(failed) > 0 {
		// Keep a flight-recorder dump alongside the outputs: the last
		// simulation events before the failure, the same post-mortem the
		// CLI dumps to stderr on a watchdog kill.
		dumpErr := runstate.AtomicWrite(filepath.Join(jobDir, jobFlightFile), func(w io.Writer) error {
			tel.Rec().Dump(w, fmt.Sprintf("job %s attempt %d: %d experiment(s) failed", j.id, attempt, len(failed)))
			return nil
		})
		if dumpErr != nil {
			fmt.Fprintf(d.cfg.Stderr, "service: job %s flight dump: %v\n", j.id, dumpErr)
		}
		if worst == "" {
			worst = "error"
		}
		return attemptOutcome{
			err:   fmt.Errorf("%d of %d experiments failed (%s): first: %w", len(failed), len(j.progressOrder), worst, firstErr),
			class: worst,
		}
	}
	return attemptOutcome{
		outDigest:     runstate.Digest(outBytes),
		metricsDigest: runstate.Digest(metBytes),
	}
}

// openRunJournal opens the job's run journal, resuming when one exists. A
// journal too damaged to resume is cleared and the job starts fresh — a
// job must always be runnable from its submit record alone.
func (d *Daemon) openRunJournal(runDir string, j *job) (*runstate.Journal, error) {
	opts := runstate.OpenOptions{
		Config: j.spec.configDigest(),
		Argv:   []string{"daemon-job", j.id},
	}
	if _, err := os.Stat(filepath.Join(runDir, "journal.jsonl")); err == nil {
		opts.Resume = true
	}
	jr, err := runstate.Open(runDir, opts)
	if err == nil {
		return jr, nil
	}
	if !opts.Resume {
		return nil, err
	}
	fmt.Fprintf(d.cfg.Stderr, "service: job %s run journal unusable (%v), restarting it fresh\n", j.id, err)
	if rerr := removeJobDir(runDir); rerr != nil {
		return nil, rerr
	}
	opts.Resume = false
	return runstate.Open(runDir, opts)
}

// setProgress updates a job's per-experiment progress map.
func (d *Daemon) setProgress(j *job, exp, state string) {
	d.mu.Lock()
	j.progress[exp] = state
	d.mu.Unlock()
}

// publishSnapshot stores the job's current metrics snapshot for the
// lock-free /jobs/{id}/metrics endpoint.
func (d *Daemon) publishSnapshot(j *job, tel *telemetry.Telemetry) {
	snap := tel.Reg().Snapshot()
	j.snap.Store(&snap)
}
