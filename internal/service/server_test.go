package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func postJob(t *testing.T, srv *httptest.Server, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	json.NewDecoder(resp.Body).Decode(&doc)
	return resp, doc
}

func getJSON(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	json.NewDecoder(resp.Body).Decode(&doc)
	return resp.StatusCode, doc
}

func TestHTTPJobLifecycle(t *testing.T) {
	d := newTestDaemon(t, t.TempDir(), nil)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	resp, doc := postJob(t, srv, `{"exps":["alpha","beta"]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d, want 202", resp.StatusCode)
	}
	id, _ := doc["id"].(string)
	if id == "" {
		t.Fatalf("no id in response: %v", doc)
	}
	if loc := resp.Header.Get("Location"); loc != "/jobs/"+id {
		t.Fatalf("Location = %q", loc)
	}

	waitState(t, d, id, StateDone)

	code, job := getJSON(t, srv.URL+"/jobs/"+id)
	if code != 200 || job["state"] != "done" {
		t.Fatalf("GET /jobs/%s = %d %v", id, code, job)
	}

	rr, err := http.Get(srv.URL + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Body.Close()
	if rr.StatusCode != 200 {
		t.Fatalf("GET result = %d", rr.StatusCode)
	}
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, rerr := rr.Body.Read(buf)
		sb.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	if !strings.Contains(sb.String(), "ALPHA") || !strings.Contains(sb.String(), "BETA") {
		t.Fatalf("result body = %q", sb.String())
	}

	code, list := getJSON(t, srv.URL+"/jobs")
	if code != 200 {
		t.Fatalf("GET /jobs = %d", code)
	}
	if jobs, _ := list["jobs"].([]any); len(jobs) != 1 {
		t.Fatalf("job list = %v", list)
	}

	code, prog := getJSON(t, srv.URL+"/jobs/"+id+"/progress")
	if code != 200 {
		t.Fatalf("GET progress = %d", code)
	}
	exps, _ := prog["experiments"].([]any)
	if len(exps) != 2 {
		t.Fatalf("progress experiments = %v", prog)
	}

	code, ev := getJSON(t, srv.URL+"/jobs/"+id+"/events")
	if code != 200 {
		t.Fatalf("GET events = %d", code)
	}
	events, _ := ev["events"].([]any)
	// submit, admit, start, done
	if len(events) != 4 {
		t.Fatalf("events = %v", ev)
	}

	if code, _ := getJSON(t, srv.URL+"/jobs/j9999"); code != 404 {
		t.Fatalf("GET unknown job = %d, want 404", code)
	}
}

func TestHTTPResultNotReady(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	d := newTestDaemon(t, t.TempDir(), func(c *Config) { c.Experiments = testExps(gate, nil) })
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	_, doc := postJob(t, srv, `{"exps":["slow"]}`)
	id := doc["id"].(string)
	waitRunning(t, d)
	if code, _ := getJSON(t, srv.URL+"/jobs/"+id+"/result"); code != http.StatusConflict {
		t.Fatalf("result of running job = %d, want 409", code)
	}
}

func TestHTTPSheds429WithRetryAfter(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	d := newTestDaemon(t, t.TempDir(), func(c *Config) {
		c.Experiments = testExps(gate, nil)
		c.QueueCap = 1
	})
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	if resp, _ := postJob(t, srv, `{"exps":["slow"]}`); resp.StatusCode != 202 {
		t.Fatalf("first submit = %d", resp.StatusCode)
	}
	waitRunning(t, d)
	resp, _ := postJob(t, srv, `{"exps":["alpha"]}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Overload is also visible on readiness.
	if code, doc := getJSON(t, srv.URL+"/readyz"); code != http.StatusServiceUnavailable || doc["status"] != "overloaded" {
		t.Fatalf("/readyz under overload = %d %v, want 503 overloaded", code, doc)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	d := newTestDaemon(t, t.TempDir(), nil)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	if resp, _ := postJob(t, srv, `{"exps":["nonsense"]}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown experiment = %d, want 400", resp.StatusCode)
	}
	if resp, _ := postJob(t, srv, `{"bogus":1}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field = %d, want 400", resp.StatusCode)
	}
	if resp, _ := postJob(t, srv, `not json`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body = %d, want 400", resp.StatusCode)
	}
}

func TestHTTPCancel(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	d := newTestDaemon(t, t.TempDir(), func(c *Config) { c.Experiments = testExps(gate, nil) })
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	_, doc := postJob(t, srv, `{"exps":["slow"]}`)
	id := doc["id"].(string)
	waitRunning(t, d)

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("DELETE = %d", resp.StatusCode)
	}
	waitState(t, d, id, StateCancelled)

	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("DELETE of terminal job = %d, want 409", resp2.StatusCode)
	}
}

func TestHTTPHealthAndReadiness(t *testing.T) {
	d := newTestDaemon(t, t.TempDir(), nil)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	if code, doc := getJSON(t, srv.URL+"/healthz"); code != 200 || doc["status"] != "alive" {
		t.Fatalf("/healthz = %d %v", code, doc)
	}
	if code, doc := getJSON(t, srv.URL+"/readyz"); code != 200 || doc["status"] != "ready" {
		t.Fatalf("/readyz = %d %v", code, doc)
	}

	d.Drain(time.Second)

	// Liveness stays green during drain — the process is healthy, it just
	// isn't admitting. Readiness goes 503.
	if code, doc := getJSON(t, srv.URL+"/healthz"); code != 200 || doc["status"] != "alive" {
		t.Fatalf("/healthz during drain = %d %v", code, doc)
	}
	if code, doc := getJSON(t, srv.URL+"/readyz"); code != http.StatusServiceUnavailable || doc["status"] != "draining" {
		t.Fatalf("/readyz during drain = %d %v, want 503 draining", code, doc)
	}
	if resp, _ := postJob(t, srv, `{"exps":["alpha"]}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain = %d, want 503", resp.StatusCode)
	}
}

func TestHTTPServiceMetrics(t *testing.T) {
	d := newTestDaemon(t, t.TempDir(), nil)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	_, doc := postJob(t, srv, `{"exps":["alpha"]}`)
	id := doc["id"].(string)
	waitState(t, d, id, StateDone)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 8192)
	for {
		n, rerr := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	body := sb.String()
	for _, series := range []string{"service_jobs_submitted 1", "service_jobs_done 1", "service_queue_cap 8"} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics missing %q in:\n%s", series, body)
		}
	}

	// Per-job metrics are scoped under the job id.
	jm, err := http.Get(srv.URL + "/jobs/" + id + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	jm.Body.Close()
	if jm.StatusCode != 200 {
		t.Fatalf("GET /jobs/%s/metrics = %d", id, jm.StatusCode)
	}
	mj, err := http.Get(srv.URL + "/jobs/" + id + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	mj.Body.Close()
	if mj.StatusCode != 200 {
		t.Fatalf("GET /jobs/%s/metrics.json = %d", id, mj.StatusCode)
	}
}
