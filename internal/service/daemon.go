package service

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/perf"
	"repro/internal/telemetry"
)

// Submission errors the HTTP layer maps to status codes.
var (
	// ErrOverCapacity sheds a submission: the bounded queue is full.
	// Maps to 429 + Retry-After.
	ErrOverCapacity = errors.New("service: queue at capacity")
	// ErrDraining refuses a submission: the daemon is shutting down.
	// Maps to 503.
	ErrDraining = errors.New("service: draining, not accepting jobs")
	// ErrNotFound reports an unknown job id.
	ErrNotFound = errors.New("service: no such job")
	// ErrTerminal refuses an operation on a job that already ended.
	ErrTerminal = errors.New("service: job already in a terminal state")
)

// Config configures a Daemon. Zero values select the documented defaults.
type Config struct {
	// Dir is the service directory: the job journal plus one subdirectory
	// per job (run journal, outputs, post-mortems). Required.
	Dir string
	// Experiments is the harness experiment table, in canonical order.
	// Required.
	Experiments []Experiment
	// QueueCap bounds live jobs (queued + running). Submissions beyond it
	// are shed. Default 16.
	QueueCap int
	// MaxAttempts bounds execution attempts per job when the spec doesn't
	// set its own. Default 2.
	MaxAttempts int
	// EventBudget is the per-experiment sim-event budget applied when the
	// spec doesn't set its own. Default 0 (unbounded).
	EventBudget uint64
	// JobTimeout is the per-attempt wall-clock watchdog applied when the
	// spec doesn't set its own. Default 0 (none).
	JobTimeout time.Duration
	// Parallel is the sweep worker-pool width jobs run under (output bytes
	// are identical at any width). Default runtime.NumCPU().
	Parallel int
	// RetryBackoff is the base delay before a retried attempt (doubles per
	// attempt, seeded ±50% jitter). Default 250ms.
	RetryBackoff time.Duration
	// RetrySeed perturbs the backoff jitter.
	RetrySeed uint64
	// CrashLoopLimit quarantines a recovered job whose journal shows this
	// many starts without ever reaching a terminal state: each start
	// evidently took the daemon down with it. Default 3.
	CrashLoopLimit int
	// Stderr receives operational log lines. Default io.Discard.
	Stderr io.Writer
	// Sleep is the backoff clock, injectable for tests. Default time.Sleep.
	Sleep func(time.Duration)
}

func (c *Config) fill() error {
	if c.Dir == "" {
		return errors.New("service: Config.Dir is required")
	}
	if len(c.Experiments) == 0 {
		return errors.New("service: Config.Experiments is required")
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 16
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 2
	}
	if c.Parallel <= 0 {
		c.Parallel = runtime.NumCPU()
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 250 * time.Millisecond
	}
	if c.CrashLoopLimit <= 0 {
		c.CrashLoopLimit = 3
	}
	if c.Stderr == nil {
		c.Stderr = io.Discard
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	return nil
}

// job is one submission's runtime state. All mutable fields are guarded by
// the daemon mutex; snap is atomic so the HTTP plane reads metrics without
// touching the lock.
type job struct {
	id        string
	spec      Spec
	state     State
	recovered bool // rebuilt from the journal at daemon start

	starts  int // cumulative opStart records (across daemon lives)
	attempt int // latest attempt number

	class  string // terminal failure class
	errMsg string

	outDigest     string
	metricsDigest string

	submitted time.Time
	finished  time.Time

	cancelReq      bool // DELETE arrived; terminalize as cancelled
	drainStop      bool // drain deadline hit; checkpoint, do not terminalize
	cancelAttempt  context.CancelFunc
	admitJournaled bool

	progressOrder []string
	progress      map[string]string // experiment → pending|running|restored|done|failed

	snap atomic.Pointer[telemetry.Snapshot] // latest per-experiment metrics snapshot

	done chan struct{} // closed when the job reaches a terminal state
}

// Daemon is the experiment job service: a bounded durable queue, a single
// executor goroutine, and the recovery logic that rebuilds both from the
// job journal. HTTP handling lives in server.go; per-attempt execution in
// runner.go.
type Daemon struct {
	cfg     Config
	journal *jobJournal
	known   map[string]bool

	mu       sync.Mutex
	cond     *sync.Cond
	jobs     map[string]*job
	order    []*job // submission order, terminal jobs included
	queue    []*job // FIFO of jobs waiting for the executor
	running  *job
	seq      int
	draining bool
	closed   bool

	execDone    chan struct{}
	started     time.Time
	prevWorkers int
	met         *svcMetrics
}

// New opens (or recovers) the service in cfg.Dir. Recovery replays the job
// journal: terminal jobs are kept for inspection, non-terminal jobs
// re-enter the queue in submission order — a job that was mid-attempt when
// the last daemon died resumes from its run journal — and a job whose
// starts keep killing the daemon is quarantined instead of re-admitted.
func New(cfg Config) (*Daemon, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	jj, recs, err := openJobJournal(cfg.Dir)
	if err != nil {
		return nil, err
	}
	replayed, err := replayJobs(recs)
	if err != nil {
		jj.close()
		return nil, err
	}
	d := &Daemon{
		cfg:      cfg,
		journal:  jj,
		known:    map[string]bool{},
		jobs:     map[string]*job{},
		execDone: make(chan struct{}),
		started:  time.Now(),
		met:      newSvcMetrics(),
	}
	d.cond = sync.NewCond(&d.mu)
	for _, e := range cfg.Experiments {
		d.known[e.Name] = true
	}
	for _, r := range replayed {
		j := &job{
			id: r.id, spec: r.spec, state: r.state,
			starts: r.starts, attempt: r.attempt,
			class: r.class, errMsg: r.errMsg,
			outDigest: r.outDig, metricsDigest: r.metDig,
			submitted: time.Now(),
			done:      make(chan struct{}),
		}
		j.initProgress(d.resolve(j.spec))
		d.jobs[j.id] = j
		d.order = append(d.order, j)
		d.seq++
		if j.state.Terminal() {
			close(j.done)
			continue
		}
		j.recovered = true
		d.met.recovered.Add(1)
		if j.starts >= cfg.CrashLoopLimit {
			// Every one of its starts is a daemon life that never recorded a
			// terminal state for it: treat the job as the likely killer and
			// quarantine it at the gate rather than letting it take this
			// life down too.
			msg := fmt.Sprintf("%d starts without reaching a terminal state (crash-loop limit %d)", j.starts, cfg.CrashLoopLimit)
			if err := d.journal.append(jobRecord{Op: opQuarantine, ID: j.id, Class: "crash-loop", Err: msg}); err != nil {
				jj.close()
				return nil, err
			}
			d.setTerminal(j, StateQuarantined, "crash-loop", msg)
			fmt.Fprintf(cfg.Stderr, "service: job %s quarantined at recovery: %s\n", j.id, msg)
			continue
		}
		// admit was journaled in a previous life (or start was, which
		// implies it): re-admitting must not journal a second admit, the
		// FSM would reject the replay.
		j.admitJournaled = j.state == StateAdmitted || j.state == StateRunning
		j.state = StateQueued
		d.queue = append(d.queue, j)
	}
	d.met.queueDepth.Store(int64(len(d.queue)))
	d.met.queueCap.Store(int64(cfg.QueueCap))
	return d, nil
}

// Start launches the executor. Jobs execute strictly one at a time (the
// experiment layer's journal and budget knobs are process-global; see the
// package comment) — parallelism lives inside each job's sweep pool.
func (d *Daemon) Start() {
	d.prevWorkers = experiments.SetParallelism(d.cfg.Parallel)
	go d.executor()
}

// Submit validates, journals, and enqueues a job, returning its id.
// Returns ErrDraining during shutdown and ErrOverCapacity when the queue
// is full — in both cases nothing is journaled.
func (d *Daemon) Submit(spec Spec) (string, error) {
	if err := spec.Validate(d.known); err != nil {
		return "", err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed || d.draining {
		return "", ErrDraining
	}
	live := len(d.queue)
	if d.running != nil {
		live++
	}
	if live >= d.cfg.QueueCap {
		d.met.shed.Add(1)
		return "", ErrOverCapacity
	}
	d.seq++
	id := fmt.Sprintf("j%04d", d.seq)
	// Journal before exposing: once Submit returns an id, a crash must
	// never forget the job.
	sp := spec
	if err := d.journal.append(jobRecord{Op: opSubmit, ID: id, Spec: &sp}); err != nil {
		return "", err
	}
	j := &job{
		id: id, spec: spec, state: StateQueued,
		submitted: time.Now(), done: make(chan struct{}),
	}
	j.initProgress(d.resolve(spec))
	d.jobs[id] = j
	d.order = append(d.order, j)
	d.queue = append(d.queue, j)
	d.met.submitted.Add(1)
	d.met.queueDepth.Store(int64(len(d.queue)))
	d.cond.Signal()
	return id, nil
}

// Cancel cancels a job: a queued job terminalizes immediately, a running
// one has its attempt aborted and terminalizes when the runner unwinds.
func (d *Daemon) Cancel(id string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	j := d.jobs[id]
	if j == nil {
		return ErrNotFound
	}
	if j.state.Terminal() {
		return ErrTerminal
	}
	if j.state == StateRunning || j.state == StateAdmitted && d.running == j {
		j.cancelReq = true
		if j.cancelAttempt != nil {
			j.cancelAttempt()
		}
		return nil
	}
	for i, q := range d.queue {
		if q == j {
			d.queue = append(d.queue[:i], d.queue[i+1:]...)
			break
		}
	}
	d.met.queueDepth.Store(int64(len(d.queue)))
	if err := d.journal.append(jobRecord{Op: opCancel, ID: j.id, Err: "cancelled via API"}); err != nil {
		return err
	}
	d.setTerminal(j, StateCancelled, "", "cancelled via API")
	return nil
}

// Drain shuts the daemon down gracefully: stop admitting (readiness goes
// 503), let the running job finish, then stop. If the running job is still
// going when timeout expires it is checkpointed — its attempt is aborted
// with the run journal intact and no terminal record, so the next daemon
// on this directory resumes it. Queued jobs similarly stay journaled as
// queued and recover on restart. Returns true when the drain completed
// without checkpointing.
func (d *Daemon) Drain(timeout time.Duration) bool {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return true
	}
	d.draining = true
	d.met.draining.Store(1)
	d.cond.Broadcast()
	d.mu.Unlock()

	clean := true
	select {
	case <-d.execDone:
	case <-time.After(timeout):
		clean = false
		d.mu.Lock()
		if j := d.running; j != nil {
			j.drainStop = true
			if j.cancelAttempt != nil {
				j.cancelAttempt()
			}
			fmt.Fprintf(d.cfg.Stderr, "service: drain deadline hit, checkpointing job %s\n", j.id)
		}
		d.mu.Unlock()
		<-d.execDone
	}
	return clean
}

// Close stops the executor (checkpointing any running job, as Drain's
// deadline path does) and closes the job journal. Idempotent.
func (d *Daemon) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.met.draining.Store(1)
	if j := d.running; j != nil {
		j.drainStop = true
		if j.cancelAttempt != nil {
			j.cancelAttempt()
		}
	}
	d.cond.Broadcast()
	d.mu.Unlock()
	<-d.execDone
	experiments.SetParallelism(d.prevWorkers)
	return d.journal.close()
}

// Draining reports whether the daemon has stopped admitting jobs.
func (d *Daemon) Draining() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.draining || d.closed
}

// executor is the single job-execution loop: pop in FIFO order, run to a
// terminal state (or checkpoint), repeat until drain or close.
func (d *Daemon) executor() {
	defer close(d.execDone)
	for {
		d.mu.Lock()
		for !d.closed && !d.draining && len(d.queue) == 0 {
			d.cond.Wait()
		}
		if d.closed || d.draining || len(d.queue) == 0 {
			d.mu.Unlock()
			return
		}
		j := d.queue[0]
		d.queue = d.queue[1:]
		d.met.queueDepth.Store(int64(len(d.queue)))
		if !j.admitJournaled {
			if err := d.journal.append(jobRecord{Op: opAdmit, ID: j.id}); err != nil {
				// An unjournalable admission is a disk-level emergency; put
				// the job back and stop executing rather than run work a
				// crash would forget.
				d.queue = append([]*job{j}, d.queue...)
				d.closed = true
				fmt.Fprintf(d.cfg.Stderr, "service: journal admit %s: %v; executor stopping\n", j.id, err)
				d.mu.Unlock()
				return
			}
			j.admitJournaled = true
		}
		d.transition(j, StateAdmitted)
		d.running = j
		d.met.running.Store(1)
		d.mu.Unlock()

		d.runJob(j)

		d.mu.Lock()
		d.running = nil
		d.met.running.Store(0)
		d.mu.Unlock()
	}
}

// runJob drives one job through bounded attempts to a terminal state — or
// to a drain checkpoint, which leaves it journaled as running so the next
// daemon resumes it.
func (d *Daemon) runJob(j *job) {
	perf.Active().JobStart(time.Since(j.submitted))
	busyStart := time.Now()
	maxAttempts := j.spec.MaxAttempts
	if maxAttempts == 0 {
		maxAttempts = d.cfg.MaxAttempts
	}
	var out attemptOutcome
	for try := 1; try <= maxAttempts; try++ {
		if try > 1 {
			perf.Active().JobAttempt()
			d.met.retried.Add(1)
			d.cfg.Sleep(backoffDelay(d.cfg.RetryBackoff, j.id, try-1, d.cfg.RetrySeed))
		}

		d.mu.Lock()
		if j.cancelReq {
			// Cancelled between attempts (or while admitted): terminalize
			// without starting another attempt.
			d.mu.Unlock()
			d.terminalize(j, StateCancelled, "", "cancelled via API", busyStart)
			return
		}
		if d.closed || j.drainStop {
			d.checkpoint(j)
			return
		}
		j.attempt = j.starts + 1
		j.starts++
		ctx, cancel := context.WithCancel(context.Background())
		if t := j.spec.TimeoutMs; t > 0 {
			ctx, cancel = context.WithTimeout(context.Background(), time.Duration(t)*time.Millisecond)
		} else if d.cfg.JobTimeout > 0 {
			ctx, cancel = context.WithTimeout(context.Background(), d.cfg.JobTimeout)
		}
		j.cancelAttempt = cancel
		attempt := j.attempt
		if err := d.journal.append(jobRecord{Op: opStart, ID: j.id, Attempt: attempt}); err != nil {
			cancel()
			j.cancelAttempt = nil
			d.mu.Unlock()
			d.terminalize(j, StateFailed, "error", fmt.Sprintf("journal start: %v", err), busyStart)
			return
		}
		if j.state != StateRunning { // a retry stays running across attempts
			d.transition(j, StateRunning)
		}
		d.mu.Unlock()

		out = d.executeAttempt(ctx, j, attempt)
		cancel()

		d.mu.Lock()
		j.cancelAttempt = nil
		aborted := j.cancelReq || j.drainStop || d.closed
		d.mu.Unlock()

		if aborted {
			d.mu.Lock()
			if j.cancelReq {
				d.mu.Unlock()
				d.terminalize(j, StateCancelled, "", "cancelled via API", busyStart)
				return
			}
			d.checkpoint(j)
			return
		}
		if out.err == nil {
			d.mu.Lock()
			j.outDigest, j.metricsDigest = out.outDigest, out.metricsDigest
			d.mu.Unlock()
			if err := d.journal.append(jobRecord{Op: opDone, ID: j.id, OutDigest: out.outDigest, MetricsDigest: out.metricsDigest}); err != nil {
				d.terminalize(j, StateFailed, "error", fmt.Sprintf("journal done: %v", err), busyStart)
				return
			}
			d.mu.Lock()
			d.setTerminal(j, StateDone, "", "")
			d.mu.Unlock()
			perf.Active().JobEnd(time.Since(busyStart))
			d.met.done.Add(1)
			return
		}
		fmt.Fprintf(d.cfg.Stderr, "service: job %s attempt %d failed (%s): %v\n", j.id, attempt, out.class, out.err)
	}
	// Attempts exhausted. A plain experiment error is a failed job; a
	// poison class (panic, watchdog, budget) is quarantined — the job is
	// presumed to hurt any daemon that runs it again.
	if out.class == "error" {
		d.terminalize(j, StateFailed, out.class, out.err.Error(), busyStart)
		return
	}
	d.terminalize(j, StateQuarantined, out.class, out.err.Error(), busyStart)
}

// terminalize journals and applies a terminal state reached by the runner.
func (d *Daemon) terminalize(j *job, st State, class, msg string, busyStart time.Time) {
	op := map[State]string{StateFailed: opFail, StateQuarantined: opQuarantine, StateCancelled: opCancel}[st]
	if err := d.journal.append(jobRecord{Op: op, ID: j.id, Class: class, Err: msg}); err != nil {
		fmt.Fprintf(d.cfg.Stderr, "service: journal %s %s: %v\n", op, j.id, err)
	}
	d.mu.Lock()
	d.setTerminal(j, st, class, msg)
	d.mu.Unlock()
	perf.Active().JobEnd(time.Since(busyStart))
	switch st {
	case StateFailed:
		d.met.failed.Add(1)
	case StateQuarantined:
		d.met.quarantined.Add(1)
		fmt.Fprintf(d.cfg.Stderr, "service: job %s quarantined (%s): %s\n", j.id, class, msg)
	case StateCancelled:
		d.met.cancelled.Add(1)
	}
}

// checkpoint abandons a job mid-flight for drain/close: no terminal record
// is journaled, so on disk the job is still running and the next daemon
// recovers and resumes it. In memory it returns to queued. Caller holds mu.
func (d *Daemon) checkpoint(j *job) {
	d.transition(j, StateQueued)
	d.queue = append([]*job{j}, d.queue...)
	d.met.queueDepth.Store(int64(len(d.queue)))
	d.mu.Unlock()
}

// transition applies a validated FSM edge. Caller holds mu.
func (d *Daemon) transition(j *job, to State) {
	if !canTransition(j.state, to) {
		panic(fmt.Sprintf("service: illegal transition %s → %s for %s", j.state, to, j.id))
	}
	j.state = to
}

// setTerminal applies a terminal state. Caller holds mu (or the job is not
// yet shared).
func (d *Daemon) setTerminal(j *job, st State, class, msg string) {
	if !st.Terminal() {
		panic("service: setTerminal on non-terminal state " + string(st))
	}
	if !canTransition(j.state, st) {
		panic(fmt.Sprintf("service: illegal transition %s → %s for %s", j.state, st, j.id))
	}
	j.state = st
	j.class, j.errMsg = class, msg
	j.finished = time.Now()
	close(j.done)
}

// resolve expands a spec's selection against the experiment table, in
// canonical table order (the CLI's order, which byte-identity depends on).
func (d *Daemon) resolve(spec Spec) []Experiment {
	all := false
	want := map[string]bool{}
	for _, n := range spec.Exps {
		if n == "all" {
			all = true
		} else {
			want[n] = true
		}
	}
	var sel []Experiment
	for _, e := range d.cfg.Experiments {
		if all || want[e.Name] {
			sel = append(sel, e)
		}
	}
	return sel
}

func (j *job) initProgress(sel []Experiment) {
	j.progress = map[string]string{}
	for _, e := range sel {
		j.progressOrder = append(j.progressOrder, e.Name)
		j.progress[e.Name] = "pending"
	}
}

// jobDir is the per-job directory under the service dir.
func (d *Daemon) jobDir(id string) string { return filepath.Join(d.cfg.Dir, "jobs", id) }

// backoffDelay computes the seeded retry backoff: base doubling per
// attempt with deterministic ±50% jitter derived from the job id, the
// attempt, and the seed (the same scheme the sweep-point retry plane
// uses, so delays are reproducible run to run).
func backoffDelay(base time.Duration, id string, attempt int, seed uint64) time.Duration {
	h := fnv.New64a()
	io.WriteString(h, id)
	r := h.Sum64() ^ (uint64(attempt) * 0x9e3779b97f4a7c15) ^ seed
	d := base << (attempt - 1)
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	// jitter in [0.5, 1.5): keep retries of simultaneously failing jobs
	// from synchronizing.
	frac := 0.5 + float64(r%1024)/1024.0
	return time.Duration(float64(d) * frac)
}

// removeJobDir clears a job's directory (used by tests and by the damaged-
// resume fallback in the runner).
func removeJobDir(dir string) error { return os.RemoveAll(dir) }
