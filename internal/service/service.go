// Package service turns the experiment harness into a long-lived,
// crash-recovering job daemon: an HTTP job API backed by a durable,
// bounded job queue, with every accepted job journaled (schema adcp-job/1)
// through an explicit lifecycle FSM
//
//	queued → admitted → running → {done, failed, quarantined, cancelled}
//
// so a kill -9 of the daemon at any instant, followed by a restart on the
// same directory, recovers the queue from disk and resumes in-flight jobs
// with byte-identical results.
//
// The package lifts the single-run guarantees of internal/runstate (PR 8)
// to a fleet of jobs the same way State-Compute Replication lifts
// single-core stateful packet processing to shards: each job owns its
// state — a private run directory journaled by the same crash-safe
// machinery `adcpsim -run-dir` uses — and the service journal is a second,
// job-granular log over it. Recovery composes: the job journal replays to
// rebuild the queue, and each recovered in-flight job resumes its own run
// journal, restoring completed experiments instead of re-running them.
//
// Robustness properties, pinned by tests and the daemon-chaos CI gate:
//
//   - Admission control: the queue is bounded; submissions over capacity
//     are shed (HTTP 429 + Retry-After) without being journaled.
//   - Watchdogs: every job runs under the wall-clock/event-budget
//     watchdog plane (internal/experiments.Run).
//   - Retries + quarantine: failing jobs get bounded, seeded-backoff
//     retries; a job that exhausts them is quarantined (flight-recorder
//     post-mortem preserved) without taking down the service, and a job
//     whose starts crash the daemon repeatedly is quarantined at recovery
//     (crash-loop protection).
//   - Graceful drain: SIGTERM stops admission (readiness goes 503),
//     finishes or checkpoints running jobs, then exits; a checkpointed
//     job resumes on the next start.
//
// Jobs execute one at a time, in admission order: the experiment layer's
// journal, retry, and event-budget knobs are process-wide, and serial
// execution is what makes a job's output byte-identical to the batch CLI
// run of the same spec. Concurrency lives in two other places — the HTTP
// plane is fully concurrent, and each job's sweep points fan out across
// the shared parallel worker pool (internal/parallel) under per-job
// telemetry hubs. See docs/SERVICE.md.
package service

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/runstate"
)

// State is a job's position in the lifecycle FSM.
type State string

// Lifecycle states. Queued and admitted and running are live; the other
// four are terminal.
const (
	StateQueued      State = "queued"      // accepted and journaled, waiting for the executor
	StateAdmitted    State = "admitted"    // claimed by the executor, not yet executing
	StateRunning     State = "running"     // an attempt is executing
	StateDone        State = "done"        // results committed, digests journaled
	StateFailed      State = "failed"      // attempts exhausted on a plain experiment error
	StateQuarantined State = "quarantined" // attempts exhausted on a poison class (panic/watchdog/budget), or crash-looping
	StateCancelled   State = "cancelled"   // cancelled via the API (or while queued at drain shutdown)
)

// Terminal reports whether the state ends the FSM.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateQuarantined, StateCancelled:
		return true
	}
	return false
}

// validNext is the lifecycle FSM: every transition the daemon performs is
// checked against it, so an impossible hop (done → running, cancelled →
// admitted) is a programming error caught loudly, not a silent corruption.
var validNext = map[State][]State{
	StateQueued:   {StateAdmitted, StateCancelled, StateQuarantined},
	StateAdmitted: {StateRunning, StateCancelled},
	StateRunning:  {StateDone, StateFailed, StateQuarantined, StateCancelled, StateQueued},
}

// canTransition reports whether from → to is a legal FSM edge. running →
// queued is the drain checkpoint: the attempt is abandoned mid-flight with
// its run journal intact, and the job re-enqueues on the next start.
func canTransition(from, to State) bool {
	for _, n := range validNext[from] {
		if n == to {
			return true
		}
	}
	return false
}

// SpecSchema identifies the job specification document.
const SpecSchema = "adcp-jobspec/1"

// Spec is what POST /jobs accepts: which experiments to run and the
// bounds the job runs under. The zero values select the daemon defaults.
type Spec struct {
	// Exps selects experiments by id, in the harness's canonical order
	// ("all" selects every experiment). Required.
	Exps []string `json:"exps"`
	// EventBudget bounds simulated events per experiment (0 = daemon
	// default; the watchdog plane converts exhaustion into a classified
	// failure).
	EventBudget uint64 `json:"event_budget,omitempty"`
	// TimeoutMs bounds the job's wall-clock time per attempt (0 = daemon
	// default).
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// MaxAttempts bounds execution attempts (0 = daemon default; retries
	// back off with seeded jitter and exhaustion quarantines or fails the
	// job by failure class).
	MaxAttempts int `json:"max_attempts,omitempty"`
}

// Validate checks the spec against the experiment table. known maps
// experiment id → true; "all" is always accepted.
func (s Spec) Validate(known map[string]bool) error {
	if len(s.Exps) == 0 {
		return fmt.Errorf("spec: exps is required (experiment ids, or \"all\")")
	}
	for _, e := range s.Exps {
		if e != "all" && !known[e] {
			return fmt.Errorf("spec: unknown experiment %q", e)
		}
	}
	if s.MaxAttempts < 0 {
		return fmt.Errorf("spec: max_attempts must be ≥ 0")
	}
	if s.TimeoutMs < 0 {
		return fmt.Errorf("spec: timeout_ms must be ≥ 0")
	}
	return nil
}

// configDigest canonicalizes the spec fields that change a job's
// deterministic output — the selection and the event budget — into the
// digest its run journal records, so a recovered job refuses to resume
// under a mutated spec. Scheduling knobs (timeout, attempts, the daemon's
// pool width) are excluded: they never change output bytes.
func (s Spec) configDigest() string {
	sel := append([]string(nil), s.Exps...)
	sort.Strings(sel)
	canon := fmt.Sprintf("adcp-jobcfg/1 exps=%s event-budget=%d", strings.Join(sel, ","), s.EventBudget)
	return runstate.Digest([]byte(canon))
}

// Experiment is one entry of the harness's experiment table, injected by
// the CLI so the service can run (and validate) job selections without
// depending on cmd/adcpsim.
type Experiment struct {
	Name string
	Desc string
	Run  func(w io.Writer) error
}
