package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"time"

	"repro/internal/perf"
	"repro/internal/runstate"
	"repro/internal/telemetry"
)

// JobView is a job's externally visible state — what GET /jobs/{id}
// returns.
type JobView struct {
	ID        string `json:"id"`
	State     State  `json:"state"`
	Spec      Spec   `json:"spec"`
	Recovered bool   `json:"recovered,omitempty"` // rebuilt from the journal after a restart
	Attempts  int    `json:"attempts"`
	Class     string `json:"class,omitempty"` // terminal failure class
	Error     string `json:"error,omitempty"`

	OutDigest     string `json:"out_digest,omitempty"`
	MetricsDigest string `json:"metrics_digest,omitempty"`

	SubmittedAt string `json:"submitted_at"`
	FinishedAt  string `json:"finished_at,omitempty"`
}

func (d *Daemon) view(j *job) JobView {
	v := JobView{
		ID: j.id, State: j.state, Spec: j.spec, Recovered: j.recovered,
		Attempts: j.starts, Class: j.class, Error: j.errMsg,
		OutDigest: j.outDigest, MetricsDigest: j.metricsDigest,
		SubmittedAt: j.submitted.UTC().Format(time.RFC3339),
	}
	if !j.finished.IsZero() {
		v.FinishedAt = j.finished.UTC().Format(time.RFC3339)
	}
	return v
}

// List returns every job the daemon knows, in submission order.
func (d *Daemon) List() []JobView {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]JobView, 0, len(d.order))
	for _, j := range d.order {
		out = append(out, d.view(j))
	}
	return out
}

// Get returns one job's view.
func (d *Daemon) Get(id string) (JobView, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	j := d.jobs[id]
	if j == nil {
		return JobView{}, ErrNotFound
	}
	return d.view(j), nil
}

// Wait blocks until the job reaches a terminal state (test convenience).
func (d *Daemon) Wait(id string) (JobView, error) {
	d.mu.Lock()
	j := d.jobs[id]
	d.mu.Unlock()
	if j == nil {
		return JobView{}, ErrNotFound
	}
	<-j.done
	return d.Get(id)
}

// Handler returns the daemon's HTTP API. Job lifecycle under /jobs,
// service observability at /metrics (service.* series), /healthz
// (liveness: the process is up) and /readyz (readiness: admitting jobs —
// 503 while draining or at capacity), plus /perf and pprof. Per-job
// metrics and progress are scoped under /jobs/{id}/; see docs/SERVICE.md.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", d.handleSubmit)
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"jobs": d.List()})
	})
	mux.HandleFunc("GET /jobs/{id}", d.withJob(func(w http.ResponseWriter, r *http.Request, v JobView) {
		writeJSON(w, http.StatusOK, v)
	}))
	mux.HandleFunc("DELETE /jobs/{id}", d.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/result", d.handleResult)
	mux.HandleFunc("GET /jobs/{id}/metrics", d.handleJobMetrics)
	mux.HandleFunc("GET /jobs/{id}/metrics.json", d.handleJobMetricsJSON)
	mux.HandleFunc("GET /jobs/{id}/progress", d.handleProgress)
	mux.HandleFunc("GET /jobs/{id}/events", d.handleEvents)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		telemetry.WritePrometheusSnapshot(w, d.met.reg.Snapshot())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "alive", "build": perf.Build().String()})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		d.mu.Lock()
		draining := d.draining || d.closed
		live := len(d.queue)
		if d.running != nil {
			live++
		}
		capp := d.cfg.QueueCap
		d.mu.Unlock()
		switch {
		case draining:
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		case live >= capp:
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "overloaded", "queue": live, "cap": capp})
		default:
			writeJSON(w, http.StatusOK, map[string]any{"status": "ready", "queue": live, "cap": capp})
		}
	})
	mux.HandleFunc("GET /perf", func(w http.ResponseWriter, r *http.Request) {
		p := perf.Active()
		if p == nil {
			http.Error(w, "perf plane disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		p.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (d *Daemon) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": fmt.Sprintf("decode spec: %v", err)})
		return
	}
	id, err := d.Submit(spec)
	switch {
	case err == nil:
		w.Header().Set("Location", "/jobs/"+id)
		writeJSON(w, http.StatusAccepted, map[string]any{"id": id, "state": StateQueued})
	case errors.Is(err, ErrOverCapacity):
		// Load shedding: the queue is the backpressure signal. Retry-After
		// is a hint, not a promise — the client owns its backoff.
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusTooManyRequests, map[string]any{"error": err.Error()})
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"error": err.Error()})
	default:
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
	}
}

func (d *Daemon) handleCancel(w http.ResponseWriter, r *http.Request) {
	err := d.Cancel(r.PathValue("id"))
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, map[string]any{"status": "cancelling"})
	case errors.Is(err, ErrNotFound):
		writeJSON(w, http.StatusNotFound, map[string]any{"error": err.Error()})
	case errors.Is(err, ErrTerminal):
		writeJSON(w, http.StatusConflict, map[string]any{"error": err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()})
	}
}

// handleResult serves a done job's out.txt, digest-verified against the
// journal's done record so a tampered or torn file is a loud 500, never a
// silently wrong result.
func (d *Daemon) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	v, err := d.Get(id)
	if err != nil {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": err.Error()})
		return
	}
	if v.State != StateDone {
		writeJSON(w, http.StatusConflict, map[string]any{"error": "job not done", "state": v.State})
		return
	}
	b, err := os.ReadFile(filepath.Join(d.jobDir(id), jobOutFile))
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()})
		return
	}
	if got := runstate.Digest(b); got != v.OutDigest {
		writeJSON(w, http.StatusInternalServerError, map[string]any{
			"error": "result digest mismatch", "want": v.OutDigest, "got": got,
		})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(b)
}

// handleJobMetrics serves the job's latest telemetry snapshot in
// Prometheus text format — live while the job runs, final afterwards.
func (d *Daemon) handleJobMetrics(w http.ResponseWriter, r *http.Request) {
	d.mu.Lock()
	j := d.jobs[r.PathValue("id")]
	d.mu.Unlock()
	if j == nil {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": ErrNotFound.Error()})
		return
	}
	snap := j.snap.Load()
	if snap == nil {
		writeJSON(w, http.StatusConflict, map[string]any{"error": "job has not produced metrics yet"})
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	telemetry.WritePrometheusSnapshot(w, *snap)
}

// handleJobMetricsJSON serves the job's committed metrics.json — the same
// deterministic document `adcpsim -metrics` writes — digest-verified for
// done jobs.
func (d *Daemon) handleJobMetricsJSON(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	v, err := d.Get(id)
	if err != nil {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": err.Error()})
		return
	}
	b, err := os.ReadFile(filepath.Join(d.jobDir(id), jobMetricsFile))
	if err != nil {
		writeJSON(w, http.StatusConflict, map[string]any{"error": "job has not committed metrics yet", "state": v.State})
		return
	}
	if v.State == StateDone {
		if got := runstate.Digest(b); got != v.MetricsDigest {
			writeJSON(w, http.StatusInternalServerError, map[string]any{
				"error": "metrics digest mismatch", "want": v.MetricsDigest, "got": got,
			})
			return
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

func (d *Daemon) handleProgress(w http.ResponseWriter, r *http.Request) {
	d.mu.Lock()
	j := d.jobs[r.PathValue("id")]
	if j == nil {
		d.mu.Unlock()
		writeJSON(w, http.StatusNotFound, map[string]any{"error": ErrNotFound.Error()})
		return
	}
	type expState struct {
		Name  string `json:"name"`
		State string `json:"state"`
	}
	exps := make([]expState, 0, len(j.progressOrder))
	for _, n := range j.progressOrder {
		exps = append(exps, expState{Name: n, State: j.progress[n]})
	}
	state := j.state
	d.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"id": r.PathValue("id"), "state": state, "experiments": exps})
}

// handleEvents serves a job's lifecycle records — its slice of the job
// journal, re-read from disk so the response is exactly what a recovery
// would replay.
func (d *Daemon) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := d.Get(id); err != nil {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": err.Error()})
		return
	}
	data, err := os.ReadFile(filepath.Join(d.cfg.Dir, jobJournalFile))
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()})
		return
	}
	bodies, _, err := runstate.ReplayRaw(data)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()})
		return
	}
	events := []json.RawMessage{}
	for _, b := range bodies {
		var rec jobRecord
		if json.Unmarshal(b, &rec) == nil && rec.ID == id {
			events = append(events, json.RawMessage(b))
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "events": events})
}

func (d *Daemon) withJob(fn func(http.ResponseWriter, *http.Request, JobView)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		v, err := d.Get(r.PathValue("id"))
		if err != nil {
			writeJSON(w, http.StatusNotFound, map[string]any{"error": err.Error()})
			return
		}
		fn(w, r, v)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
