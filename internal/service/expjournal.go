package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"repro/internal/runstate"
	"repro/internal/telemetry"
)

// This file is the shared persistence vocabulary for completed
// experiments. It moved here from cmd/adcpsim so the batch CLI and the
// job daemon journal experiments identically — same schema, same unit
// names, same restore rules — which is what lets a job killed under one
// plane resume under the other tooling (and what keeps daemon output
// byte-identical to the CLI's).

// ExpPayloadSchema identifies the persisted per-experiment payload layout.
const ExpPayloadSchema = "adcp-exp/1"

// expPayload is what the run journal persists for one completed
// experiment: its table output verbatim plus its encoded telemetry hub, so
// a resumed run replays the experiment — bytes and metrics — without
// re-running it.
type expPayload struct {
	Schema string          `json:"schema"`
	Output string          `json:"output"`
	Hub    json.RawMessage `json:"hub,omitempty"`
}

// ExpUnit names an experiment's journal unit (sweep points inside it
// journal separately as "point:<sweep>[i]" units).
func ExpUnit(name string) string { return "exp:" + name }

// RestoreExperiment replays a completed experiment from the journal: its
// captured table output and (when the run needs one) its decoded telemetry
// hub, ready to merge. Any integrity or decode failure reports
// not-restored, so the experiment simply re-runs.
func RestoreExperiment(j *runstate.Journal, name string, wantHub bool) (string, *telemetry.Telemetry, bool) {
	payload, ok := j.LookupDone(ExpUnit(name))
	if !ok {
		return "", nil, false
	}
	var doc expPayload
	if err := json.Unmarshal(payload, &doc); err != nil || doc.Schema != ExpPayloadSchema {
		return "", nil, false
	}
	var hub *telemetry.Telemetry
	if wantHub {
		if len(doc.Hub) == 0 {
			return "", nil, false
		}
		h, err := telemetry.DecodeHubState(doc.Hub)
		if err != nil {
			return "", nil, false
		}
		hub = h
	}
	return doc.Output, hub, true
}

// PersistExperiment commits a completed experiment's output and telemetry
// to the journal. Persistence failures are reported but never fail the
// run — the experiment just re-runs on resume.
func PersistExperiment(j *runstate.Journal, name, output string, hub *telemetry.Telemetry, withHub bool, stderr io.Writer) {
	doc := expPayload{Schema: ExpPayloadSchema, Output: output}
	if withHub {
		b, err := telemetry.EncodeHubState(hub)
		if err != nil {
			fmt.Fprintf(stderr, "runstate: encode %s: %v (experiment will re-run on resume)\n", ExpUnit(name), err)
			return
		}
		doc.Hub = b
	}
	payload, err := json.Marshal(doc)
	if err == nil {
		err = j.Done(ExpUnit(name), payload)
	}
	if err != nil {
		fmt.Fprintf(stderr, "runstate: persist %s: %v (experiment will re-run on resume)\n", ExpUnit(name), err)
	}
}

// CaptureOut tees experiment output: bytes reach the live writer
// immediately (progress stays visible) while the buffer accumulates the
// experiment's verbatim output for the journal payload.
type CaptureOut struct {
	mu   sync.Mutex
	live io.Writer
	buf  bytes.Buffer
}

// NewCaptureOut returns a CaptureOut teeing to live.
func NewCaptureOut(live io.Writer) *CaptureOut { return &CaptureOut{live: live} }

func (c *CaptureOut) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.buf.Write(p)
	c.mu.Unlock()
	return c.live.Write(p)
}

// String returns everything written so far.
func (c *CaptureOut) String() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.buf.String()
}
