package service

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/runstate"
)

// seedJournal writes a representative job journal — every op, every
// terminal state, one job left mid-flight — and returns its bytes.
func seedJournal(t *testing.T) []byte {
	t.Helper()
	dir := t.TempDir()
	jj, recs, err := openJobJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	spec := &Spec{Exps: []string{"alpha"}}
	seq := []jobRecord{
		{Op: opSubmit, ID: "j0001", Spec: spec},
		{Op: opAdmit, ID: "j0001"},
		{Op: opStart, ID: "j0001", Attempt: 1},
		{Op: opDone, ID: "j0001", OutDigest: "d1", MetricsDigest: "d2"},
		{Op: opSubmit, ID: "j0002", Spec: spec},
		{Op: opAdmit, ID: "j0002"},
		{Op: opStart, ID: "j0002", Attempt: 1},
		{Op: opStart, ID: "j0002", Attempt: 2},
		{Op: opQuarantine, ID: "j0002", Class: "budget", Err: "event budget"},
		{Op: opSubmit, ID: "j0003", Spec: spec},
		{Op: opCancel, ID: "j0003", Err: "cancelled via API"},
		{Op: opSubmit, ID: "j0004", Spec: spec},
		{Op: opAdmit, ID: "j0004"},
		{Op: opStart, ID: "j0004", Attempt: 1},
		{Op: opFail, ID: "j0004", Class: "error", Err: "boom"},
		{Op: opSubmit, ID: "j0005", Spec: spec},
		{Op: opAdmit, ID: "j0005"},
		{Op: opStart, ID: "j0005", Attempt: 1}, // left running: the crash case
	}
	for _, r := range seq {
		if err := jj.append(r); err != nil {
			t.Fatal(err)
		}
	}
	jj.close()
	data, err := os.ReadFile(filepath.Join(dir, jobJournalFile))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestJobJournalKillAtEveryByteOffset is the durability core of the job
// queue: for EVERY byte prefix of a valid journal — every instant a kill
// -9 could strike — reopening must succeed, replay a committed prefix of
// the record sequence, and fold it into valid FSM states.
func TestJobJournalKillAtEveryByteOffset(t *testing.T) {
	data := seedJournal(t)
	dir := t.TempDir()
	var lastCommitted int
	for cut := 0; cut <= len(data); cut++ {
		jdir := filepath.Join(dir, "svc")
		if err := os.MkdirAll(jdir, 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(jdir, jobJournalFile), data[:cut], 0o666); err != nil {
			t.Fatal(err)
		}
		jj, recs, err := openJobJournal(jdir)
		if err != nil {
			t.Fatalf("cut at %d/%d: open: %v", cut, len(data), err)
		}
		jj.close()
		jobs, err := replayJobs(recs)
		if err != nil {
			t.Fatalf("cut at %d/%d: replay: %v", cut, len(data), err)
		}
		// Record count must be monotone in the cut — a longer prefix can
		// never recover fewer committed records.
		if len(recs) < lastCommitted {
			t.Fatalf("cut at %d: %d records < previous %d", cut, len(recs), lastCommitted)
		}
		lastCommitted = len(recs)
		for _, j := range jobs {
			switch j.state {
			case StateQueued, StateAdmitted, StateRunning, StateDone,
				StateFailed, StateQuarantined, StateCancelled:
			default:
				t.Fatalf("cut at %d: job %s in impossible state %q", cut, j.id, j.state)
			}
		}
		os.RemoveAll(jdir)
	}
	// The full journal folds to the expected terminal picture.
	jdir := filepath.Join(dir, "final")
	os.MkdirAll(jdir, 0o777)
	if err := os.WriteFile(filepath.Join(jdir, jobJournalFile), data, 0o666); err != nil {
		t.Fatal(err)
	}
	jj, recs, err := openJobJournal(jdir)
	if err != nil {
		t.Fatal(err)
	}
	jj.close()
	jobs, err := replayJobs(recs)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]State{
		"j0001": StateDone, "j0002": StateQuarantined, "j0003": StateCancelled,
		"j0004": StateFailed, "j0005": StateRunning,
	}
	if len(jobs) != len(want) {
		t.Fatalf("replayed %d jobs, want %d", len(jobs), len(want))
	}
	for _, j := range jobs {
		if j.state != want[j.id] {
			t.Errorf("job %s replayed as %s, want %s", j.id, j.state, want[j.id])
		}
	}
	if jobs[1].starts != 2 {
		t.Errorf("j0002 starts = %d, want 2", jobs[1].starts)
	}
	if jobs[0].outDig != "d1" || jobs[0].metDig != "d2" {
		t.Errorf("j0001 digests = %q/%q", jobs[0].outDig, jobs[0].metDig)
	}
}

// Replay must reject records that no live daemon could have written:
// unknown jobs, duplicate submits, illegal FSM hops.
func TestReplayJobsRejectsCorruptSequences(t *testing.T) {
	spec := &Spec{Exps: []string{"alpha"}}
	cases := map[string][]jobRecord{
		"unknown job":      {{Op: opDone, ID: "jX"}},
		"duplicate submit": {{Op: opSubmit, ID: "j1", Spec: spec}, {Op: opSubmit, ID: "j1", Spec: spec}},
		"submit sans spec": {{Op: opSubmit, ID: "j1"}},
		"done from queued": {{Op: opSubmit, ID: "j1", Spec: spec}, {Op: opDone, ID: "j1"}},
		"run after done": {
			{Op: opSubmit, ID: "j1", Spec: spec}, {Op: opAdmit, ID: "j1"},
			{Op: opStart, ID: "j1", Attempt: 1}, {Op: opDone, ID: "j1"},
			{Op: opStart, ID: "j1", Attempt: 2},
		},
		"unknown op": {{Op: opSubmit, ID: "j1", Spec: spec}, {Op: "explode", ID: "j1"}},
	}
	for name, recs := range cases {
		if _, err := replayJobs(recs); err == nil {
			t.Errorf("%s: replay accepted a corrupt sequence", name)
		}
	}
}

// A foreign or future-schema journal must refuse to open.
func TestJobJournalRejectsSchemaMismatch(t *testing.T) {
	dir := t.TempDir()
	log, _, _, err := runstate.OpenLog(filepath.Join(dir, jobJournalFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Append(jobRecord{Op: opSvc, Schema: "adcp-job/999"}); err != nil {
		t.Fatal(err)
	}
	log.Close()
	if _, _, err := openJobJournal(dir); err == nil {
		t.Fatal("openJobJournal accepted a foreign schema")
	}
}
