package mat

// Range-to-ternary expansion: TCAMs match value&mask == pattern, so an
// arbitrary integer range [lo, hi] must be covered by a set of prefix
// rules. This is the standard technique behind range matches in real
// dataplanes (and the reason range-heavy ACLs eat TCAM capacity).

// TernaryRule is one value/mask pattern.
type TernaryRule struct {
	Value, Mask uint64
}

// RangeToTernary returns a minimal prefix cover of the inclusive range
// [lo, hi] over w-bit values (w ≤ 64). The greedy largest-aligned-block
// algorithm yields at most 2w-2 rules. lo > hi returns nil.
func RangeToTernary(lo, hi uint64, w int) []TernaryRule {
	if w <= 0 || w > 64 {
		return nil
	}
	var max uint64
	if w == 64 {
		max = ^uint64(0)
	} else {
		max = (uint64(1) << w) - 1
	}
	if lo > hi || lo > max {
		return nil
	}
	if hi > max {
		hi = max
	}
	fullMask := max
	var rules []TernaryRule
	for lo <= hi {
		// Largest aligned block starting at lo that fits within [lo, hi].
		size := uint64(1)
		for {
			next := size << 1
			if next == 0 { // 2^64 block
				if lo == 0 && hi == ^uint64(0) {
					size = next // marker: whole space
				}
				break
			}
			if lo&(next-1) != 0 { // not aligned to the bigger block
				break
			}
			if lo+next-1 > hi || lo+next-1 < lo { // overshoots (or wraps)
				break
			}
			size = next
		}
		if size == 0 {
			// Whole 64-bit space in one rule.
			return []TernaryRule{{Value: 0, Mask: 0}}
		}
		mask := fullMask &^ (size - 1)
		rules = append(rules, TernaryRule{Value: lo & mask, Mask: mask})
		if lo+size-1 == ^uint64(0) || lo+size < lo {
			break // reached the top of the space
		}
		lo += size
	}
	return rules
}

// InstallRange adds a prefix cover of [lo, hi] to a ternary table at the
// given priority, all rules sharing one result. It returns the number of
// TCAM entries consumed — the range-expansion cost.
func InstallRange(t *TernaryTable, lo, hi uint64, w, priority int, r Result) (int, error) {
	rules := RangeToTernary(lo, hi, w)
	for _, rule := range rules {
		if err := t.InsertRule(rule.Value, rule.Mask, priority, r); err != nil {
			return 0, err
		}
	}
	return len(rules), nil
}
