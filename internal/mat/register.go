package mat

import "fmt"

// RegisterOp is a read-modify-write operation on a register cell. These are
// the stateful-ALU primitives that make "stateful processing" (paper §1)
// possible: each packet may atomically read and update one cell per
// register file per stage.
type RegisterOp int

// Register operations.
const (
	RegRead  RegisterOp = iota // result = cell
	RegWrite                   // cell = arg; result = old value
	RegAdd                     // cell += arg; result = new value
	RegMax                     // cell = max(cell, arg); result = new value
	RegMin                     // cell = min(cell, arg); result = new value
	RegCAS                     // if cell == 0 { cell = arg }; result = old value
)

// String returns the op mnemonic.
func (op RegisterOp) String() string {
	switch op {
	case RegRead:
		return "read"
	case RegWrite:
		return "write"
	case RegAdd:
		return "add"
	case RegMax:
		return "max"
	case RegMin:
		return "min"
	case RegCAS:
		return "cas"
	default:
		return fmt.Sprintf("regop(%d)", int(op))
	}
}

// RegisterFile is an array of stateful cells local to one stage. Real RMT
// register files permit exactly one RMW per packet per file; the pipeline
// enforces that constraint, this type just provides the storage and ops.
type RegisterFile struct {
	cells []uint64
	ops   uint64 // RMW operations executed (for accounting)
}

// NewRegisterFile returns a file of n zeroed cells.
func NewRegisterFile(n int) *RegisterFile {
	return &RegisterFile{cells: make([]uint64, n)}
}

// Size returns the number of cells.
func (f *RegisterFile) Size() int { return len(f.cells) }

// Ops returns the number of RMW operations executed.
func (f *RegisterFile) Ops() uint64 { return f.ops }

// Peek reads a cell without counting as an RMW (test/inspection use).
func (f *RegisterFile) Peek(idx int) uint64 { return f.cells[idx] }

// Execute performs op on cell idx with argument arg and returns the result.
// Out-of-range indexes panic: the compiler layer is responsible for bounds.
func (f *RegisterFile) Execute(op RegisterOp, idx int, arg uint64) uint64 {
	f.ops++
	cell := &f.cells[idx]
	switch op {
	case RegRead:
		return *cell
	case RegWrite:
		old := *cell
		*cell = arg
		return old
	case RegAdd:
		*cell += arg
		return *cell
	case RegMax:
		if arg > *cell {
			*cell = arg
		}
		return *cell
	case RegMin:
		if arg < *cell {
			*cell = arg
		}
		return *cell
	case RegCAS:
		old := *cell
		if old == 0 {
			*cell = arg
		}
		return old
	default:
		panic(fmt.Sprintf("mat: unknown register op %d", op))
	}
}

// Snapshot copies the cells (tests and result extraction).
func (f *RegisterFile) Snapshot() []uint64 {
	out := make([]uint64, len(f.cells))
	copy(out, f.cells)
	return out
}

// Restore overwrites the file's cells and RMW count from a checkpoint.
// The cell count must match the file's geometry.
func (f *RegisterFile) Restore(cells []uint64, ops uint64) error {
	if len(cells) != len(f.cells) {
		return fmt.Errorf("mat: restore %d cells into a %d-cell file", len(cells), len(f.cells))
	}
	copy(f.cells, cells)
	f.ops = ops
	return nil
}

// Reset zeroes all cells (keeps op count).
func (f *RegisterFile) Reset() {
	for i := range f.cells {
		f.cells[i] = 0
	}
}
