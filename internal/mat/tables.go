// Package mat implements the match-action substrate: exact/LPM/ternary
// match tables with entry-capacity accounting, stateful register files, and
// the stage memory model that distinguishes RMT from ADCP.
//
// In RMT (paper §2, limitation ②) each match-action unit (MAU) owns a
// private slice of a stage's table memory and matches one scalar key per
// packet; matching k keys from one packet against the same logical table
// requires k replicated copies, dividing effective capacity by k. In ADCP
// (§3.2) the per-MAU memories are interconnected so the MAUs of a stage can
// perform parallel lookups against one shared table. The §4 multi-clock
// variant instead clocks one memory n× faster than the pipeline and retires
// n serialized lookups per pipeline cycle. Both are modeled here with
// explicit cycle accounting.
package mat

import (
	"fmt"
	"math/bits"
)

// Result is the outcome of a table lookup: an action identifier plus
// immediate parameters stored with the entry.
type Result struct {
	ActionID int
	Params   [2]uint64
}

// Table is a match table. Lookup must be allocation-free.
type Table interface {
	// Lookup returns the matching entry's result.
	Lookup(key uint64) (Result, bool)
	// Insert adds or replaces an entry; it fails when capacity is exhausted.
	Insert(key uint64, r Result) error
	// Delete removes an entry if present.
	Delete(key uint64)
	// Len returns the number of installed entries.
	Len() int
	// Capacity returns the maximum number of entries.
	Capacity() int
}

// ErrTableFull is returned by Insert on a full table.
var ErrTableFull = fmt.Errorf("mat: table full")

// ExactTable is a hash-based exact-match table with a hard entry capacity
// (SRAM entries in a real stage).
type ExactTable struct {
	m   map[uint64]Result
	cap int
}

// NewExactTable returns an exact table holding up to capacity entries. The
// backing map grows on demand (most simulated tables stay far below the
// modeled SRAM capacity, and switches instantiate hundreds of them).
func NewExactTable(capacity int) *ExactTable {
	hint := capacity
	if hint > 1024 {
		hint = 1024
	}
	return &ExactTable{m: make(map[uint64]Result, hint), cap: capacity}
}

// Lookup implements Table.
func (t *ExactTable) Lookup(key uint64) (Result, bool) {
	r, ok := t.m[key]
	return r, ok
}

// Insert implements Table.
func (t *ExactTable) Insert(key uint64, r Result) error {
	if _, exists := t.m[key]; !exists && len(t.m) >= t.cap {
		return ErrTableFull
	}
	t.m[key] = r
	return nil
}

// Delete implements Table.
func (t *ExactTable) Delete(key uint64) { delete(t.m, key) }

// Len implements Table.
func (t *ExactTable) Len() int { return len(t.m) }

// Capacity implements Table.
func (t *ExactTable) Capacity() int { return t.cap }

// lpmEntry is one prefix rule.
type lpmEntry struct {
	prefix uint32
	length int // bits, 0..32
	result Result
}

// LPMTable is a longest-prefix-match table over 32-bit keys (TCAM-style
// routing lookups). Lookups scan per-length buckets from longest to
// shortest; with ≤33 lengths this is fast enough for simulation.
type LPMTable struct {
	buckets [33]map[uint32]Result // index = prefix length
	n       int
	cap     int
}

// NewLPMTable returns an LPM table holding up to capacity rules.
func NewLPMTable(capacity int) *LPMTable {
	return &LPMTable{cap: capacity}
}

func lpmMask(length int) uint32 {
	if length <= 0 {
		return 0
	}
	return ^uint32(0) << (32 - length)
}

// InsertPrefix adds a rule matching keys whose top length bits equal prefix.
func (t *LPMTable) InsertPrefix(prefix uint32, length int, r Result) error {
	if length < 0 || length > 32 {
		return fmt.Errorf("mat: bad prefix length %d", length)
	}
	prefix &= lpmMask(length)
	if t.buckets[length] == nil {
		t.buckets[length] = make(map[uint32]Result)
	}
	if _, exists := t.buckets[length][prefix]; !exists {
		if t.n >= t.cap {
			return ErrTableFull
		}
		t.n++
	}
	t.buckets[length][prefix] = r
	return nil
}

// Lookup implements Table over the low 32 bits of key.
func (t *LPMTable) Lookup(key uint64) (Result, bool) {
	k := uint32(key)
	for length := 32; length >= 0; length-- {
		b := t.buckets[length]
		if b == nil {
			continue
		}
		if r, ok := b[k&lpmMask(length)]; ok {
			return r, true
		}
	}
	return Result{}, false
}

// Insert implements Table as a host-width exact rule (length 32).
func (t *LPMTable) Insert(key uint64, r Result) error {
	return t.InsertPrefix(uint32(key), 32, r)
}

// Delete implements Table for length-32 rules.
func (t *LPMTable) Delete(key uint64) {
	if b := t.buckets[32]; b != nil {
		if _, ok := b[uint32(key)]; ok {
			delete(b, uint32(key))
			t.n--
		}
	}
}

// DeletePrefix removes a specific rule.
func (t *LPMTable) DeletePrefix(prefix uint32, length int) {
	if length < 0 || length > 32 {
		return
	}
	prefix &= lpmMask(length)
	if b := t.buckets[length]; b != nil {
		if _, ok := b[prefix]; ok {
			delete(b, prefix)
			t.n--
		}
	}
}

// Len implements Table.
func (t *LPMTable) Len() int { return t.n }

// Capacity implements Table.
func (t *LPMTable) Capacity() int { return t.cap }

// ternaryEntry is one value/mask rule with a priority.
type ternaryEntry struct {
	value, mask uint64
	priority    int
	result      Result
	live        bool
}

// TernaryTable matches key against value/mask rules, highest priority wins
// (a TCAM). Rules are scanned in priority order; capacity models TCAM size.
type TernaryTable struct {
	entries []ternaryEntry
	n       int
	cap     int
}

// NewTernaryTable returns a ternary table holding up to capacity rules.
func NewTernaryTable(capacity int) *TernaryTable {
	return &TernaryTable{cap: capacity}
}

// InsertRule adds a value/mask rule with a priority (higher wins).
func (t *TernaryTable) InsertRule(value, mask uint64, priority int, r Result) error {
	if t.n >= t.cap {
		return ErrTableFull
	}
	t.entries = append(t.entries, ternaryEntry{value: value & mask, mask: mask, priority: priority, result: r, live: true})
	t.n++
	return nil
}

// Lookup implements Table.
func (t *TernaryTable) Lookup(key uint64) (Result, bool) {
	best := -1
	bestPrio := 0
	for i := range t.entries {
		e := &t.entries[i]
		if !e.live {
			continue
		}
		if key&e.mask == e.value {
			if best == -1 || e.priority > bestPrio {
				best = i
				bestPrio = e.priority
			}
		}
	}
	if best == -1 {
		return Result{}, false
	}
	return t.entries[best].result, true
}

// Insert implements Table as a fully-masked rule at priority 0.
func (t *TernaryTable) Insert(key uint64, r Result) error {
	return t.InsertRule(key, ^uint64(0), 0, r)
}

// Delete implements Table: removes fully-masked rules equal to key.
func (t *TernaryTable) Delete(key uint64) {
	for i := range t.entries {
		e := &t.entries[i]
		if e.live && e.mask == ^uint64(0) && e.value == key {
			e.live = false
			t.n--
		}
	}
}

// Len implements Table.
func (t *TernaryTable) Len() int { return t.n }

// Capacity implements Table.
func (t *TernaryTable) Capacity() int { return t.cap }

// HashKey mixes a 64-bit key (used by partitioners and table distribution);
// SplitMix64 finalizer, deterministic across platforms.
func HashKey(k uint64) uint64 {
	k += 0x9E3779B97F4A7C15
	k = (k ^ (k >> 30)) * 0xBF58476D1CE4E5B9
	k = (k ^ (k >> 27)) * 0x94D049BB133111EB
	return k ^ (k >> 31)
}

// HashToBucket maps key onto [0, n) with good dispersion. n must be > 0.
func HashToBucket(key uint64, n int) int {
	if n <= 0 {
		panic("mat: HashToBucket with n <= 0")
	}
	if n&(n-1) == 0 {
		return int(HashKey(key) & uint64(n-1))
	}
	return int(HashKey(key) % uint64(n))
}

// Log2Ceil returns ceil(log2(n)) for n ≥ 1 (0 for n ≤ 1); used by memory
// sizing computations.
func Log2Ceil(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}
