package mat

import (
	"testing"
	"testing/quick"
)

func TestScalarReplicationCapacity(t *testing.T) {
	// Figure 3: k keys/packet forces k table copies, effective size ÷ k.
	s := NewStageMemory(ModeScalar, StageMAUs, 64*1024, 1)
	if s.EffectiveCapacity() != 64*1024 {
		t.Fatalf("unreplicated capacity = %d", s.EffectiveCapacity())
	}
	for _, k := range []int{2, 4, 8, 16} {
		if err := s.ConfigureReplication(k); err != nil {
			t.Fatal(err)
		}
		want := 64 * 1024 / k
		if got := s.EffectiveCapacity(); got != want {
			t.Errorf("replication %d: effective capacity %d, want %d", k, got, want)
		}
		if s.Parallelism() != k {
			t.Errorf("replication %d: parallelism %d", k, s.Parallelism())
		}
	}
}

func TestScalarReplicationBounds(t *testing.T) {
	s := NewStageMemory(ModeScalar, 16, 1024, 1)
	if err := s.ConfigureReplication(0); err == nil {
		t.Error("replication 0 accepted")
	}
	if err := s.ConfigureReplication(17); err == nil {
		t.Error("replication > MAUs accepted")
	}
	tiny := NewStageMemory(ModeScalar, 16, 8, 1)
	if err := tiny.ConfigureReplication(16); err == nil {
		t.Error("zero-entries-per-copy replication accepted")
	}
	arr := NewStageMemory(ModeArray, 16, 1024, 1)
	if err := arr.ConfigureReplication(2); err == nil {
		t.Error("replication accepted in array mode")
	}
}

func TestArrayModeFullCapacityAndParallelism(t *testing.T) {
	s := NewStageMemory(ModeArray, StageMAUs, 64*1024, 1)
	if s.EffectiveCapacity() != 64*1024 {
		t.Errorf("array capacity = %d, want full SRAM", s.EffectiveCapacity())
	}
	if s.Parallelism() != 16 {
		t.Errorf("array parallelism = %d, want 16", s.Parallelism())
	}
	if s.Replication() != 1 {
		t.Errorf("Replication = %d", s.Replication())
	}
}

func TestMultiClockParallelism(t *testing.T) {
	s := NewStageMemory(ModeMultiClock, 16, 1024, 8)
	if s.Parallelism() != 8 {
		t.Errorf("parallelism = %d, want clock multiple 8", s.Parallelism())
	}
	if s.MemoryClockMultiple() != 8 {
		t.Errorf("MemoryClockMultiple = %d", s.MemoryClockMultiple())
	}
	arr := NewStageMemory(ModeArray, 16, 1024, 8)
	if arr.MemoryClockMultiple() != 1 {
		t.Error("array mode should not need a faster memory clock")
	}
}

func TestInstallConsumesSRAMPerReplica(t *testing.T) {
	s := NewStageMemory(ModeScalar, 16, 1024, 1)
	s.ConfigureReplication(4)
	for k := uint64(0); k < 10; k++ {
		if err := s.Install(k, Result{ActionID: int(k)}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Installed() != 10 {
		t.Errorf("Installed = %d", s.Installed())
	}
	if s.SRAMUsed() != 40 {
		t.Errorf("SRAMUsed = %d, want 40 (10 entries × 4 copies)", s.SRAMUsed())
	}
	a := NewStageMemory(ModeArray, 16, 1024, 1)
	for k := uint64(0); k < 10; k++ {
		a.Install(k, Result{})
	}
	if a.SRAMUsed() != 10 {
		t.Errorf("array SRAMUsed = %d, want 10 (no replication)", a.SRAMUsed())
	}
}

func TestInstallOverflowAfterReplication(t *testing.T) {
	s := NewStageMemory(ModeScalar, 16, 16, 1)
	s.ConfigureReplication(4) // 4 entries per copy
	for k := uint64(0); k < 4; k++ {
		if err := s.Install(k, Result{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Install(99, Result{}); err == nil {
		t.Error("insert beyond per-copy capacity accepted")
	}
}

func TestLookupBatchScalarVsArray(t *testing.T) {
	keys := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	results := make([]Result, 8)
	hits := make([]bool, 8)

	s := NewStageMemory(ModeScalar, 16, 1024, 1) // replication 1 ⇒ parallelism 1
	s.Install(1, Result{ActionID: 1})
	if _, err := s.LookupBatch(keys, results, hits); err != ErrBatchTooWide {
		t.Errorf("scalar wide batch err = %v, want ErrBatchTooWide", err)
	}
	if cyc, err := s.LookupBatch(keys[:1], results, hits); err != nil || cyc != 1 {
		t.Errorf("scalar single: cyc=%d err=%v", cyc, err)
	}
	if !hits[0] || results[0].ActionID != 1 {
		t.Error("scalar single lookup wrong")
	}

	a := NewStageMemory(ModeArray, 16, 1024, 1)
	for k := uint64(1); k <= 8; k++ {
		a.Install(k, Result{ActionID: int(k) * 10})
	}
	cyc, err := a.LookupBatch(keys, results, hits)
	if err != nil || cyc != 1 {
		t.Fatalf("array batch: cyc=%d err=%v", cyc, err)
	}
	for i, k := range keys {
		if !hits[i] || results[i].ActionID != int(k)*10 {
			t.Errorf("array batch key %d: %+v/%v", k, results[i], hits[i])
		}
	}
}

func TestLookupBatchScalarUsesReplicas(t *testing.T) {
	s := NewStageMemory(ModeScalar, 16, 1024, 1)
	s.ConfigureReplication(4)
	for k := uint64(1); k <= 4; k++ {
		s.Install(k, Result{ActionID: int(k)})
	}
	keys := []uint64{4, 3, 2, 1}
	results := make([]Result, 4)
	hits := make([]bool, 4)
	cyc, err := s.LookupBatch(keys, results, hits)
	if err != nil || cyc != 1 {
		t.Fatalf("cyc=%d err=%v", cyc, err)
	}
	for i, k := range keys {
		if !hits[i] || results[i].ActionID != int(k) {
			t.Errorf("replica %d missed key %d", i, k)
		}
	}
}

func TestStageCounters(t *testing.T) {
	s := NewStageMemory(ModeArray, 16, 64, 1)
	s.Install(1, Result{})
	s.Lookup(1)
	s.Lookup(2)
	keys := []uint64{1, 2, 3, 4}
	s.LookupBatch(keys, make([]Result, 4), make([]bool, 4))
	if s.Lookups() != 6 {
		t.Errorf("Lookups = %d, want 6", s.Lookups())
	}
	if s.Cycles() != 3 {
		t.Errorf("Cycles = %d, want 3 (2 singles + 1 batch)", s.Cycles())
	}
}

func TestNewStageMemoryPanicsOnBadGeometry(t *testing.T) {
	mustPanicMat(t, func() { NewStageMemory(ModeScalar, 0, 10, 1) })
	mustPanicMat(t, func() { NewStageMemory(ModeScalar, 16, 0, 1) })
}

func TestModeStrings(t *testing.T) {
	if ModeScalar.String() != "scalar" || ModeArray.String() != "array" || ModeMultiClock.String() != "multiclock" {
		t.Error("mode strings wrong")
	}
	if MemoryMode(9).String() == "" {
		t.Error("unknown mode empty")
	}
}

// Property: for any replication factor k and capacity c, SRAM consumed per
// logical entry is exactly k, and effective capacity is c/k — the Figure 3
// relationship.
func TestReplicationSRAMProperty(t *testing.T) {
	f := func(kRaw, entries uint8) bool {
		k := int(kRaw)%16 + 1
		s := NewStageMemory(ModeScalar, 16, 64*1024, 1)
		if err := s.ConfigureReplication(k); err != nil {
			return false
		}
		n := int(entries)%100 + 1
		for i := 0; i < n; i++ {
			if err := s.Install(uint64(i), Result{}); err != nil {
				return false
			}
		}
		return s.SRAMUsed() == n*k && s.EffectiveCapacity() == 64*1024/k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRegisterOps(t *testing.T) {
	f := NewRegisterFile(8)
	if f.Size() != 8 {
		t.Fatalf("Size = %d", f.Size())
	}
	if got := f.Execute(RegWrite, 0, 5); got != 0 {
		t.Errorf("write returned %d, want old value 0", got)
	}
	if got := f.Execute(RegAdd, 0, 3); got != 8 {
		t.Errorf("add returned %d, want 8", got)
	}
	if got := f.Execute(RegRead, 0, 0); got != 8 {
		t.Errorf("read = %d", got)
	}
	if got := f.Execute(RegMax, 0, 100); got != 100 {
		t.Errorf("max = %d", got)
	}
	if got := f.Execute(RegMax, 0, 1); got != 100 {
		t.Errorf("max with smaller arg = %d", got)
	}
	if got := f.Execute(RegMin, 0, 7); got != 7 {
		t.Errorf("min = %d", got)
	}
	// CAS takes only when cell is zero.
	if got := f.Execute(RegCAS, 1, 42); got != 0 {
		t.Errorf("CAS on zero returned %d", got)
	}
	if got := f.Execute(RegCAS, 1, 99); got != 42 {
		t.Errorf("CAS on set cell returned %d, want 42", got)
	}
	if f.Peek(1) != 42 {
		t.Errorf("CAS overwrote: %d", f.Peek(1))
	}
	if f.Ops() != 8 {
		t.Errorf("Ops = %d, want 8", f.Ops())
	}
	f.Reset()
	if f.Peek(0) != 0 || f.Peek(1) != 0 {
		t.Error("Reset did not zero")
	}
}

func TestRegisterOpStrings(t *testing.T) {
	ops := []RegisterOp{RegRead, RegWrite, RegAdd, RegMax, RegMin, RegCAS, RegisterOp(99)}
	for _, op := range ops {
		if op.String() == "" {
			t.Errorf("empty string for op %d", int(op))
		}
	}
}

// Property: RegAdd accumulates exactly like integer addition per cell.
func TestRegisterAddProperty(t *testing.T) {
	f := func(vals []uint32) bool {
		reg := NewRegisterFile(1)
		var want uint64
		for _, v := range vals {
			want += uint64(v)
			reg.Execute(RegAdd, 0, uint64(v))
		}
		return reg.Peek(0) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLookupBatchArray16(b *testing.B) {
	s := NewStageMemory(ModeArray, 16, 64*1024, 1)
	keys := make([]uint64, 16)
	for i := range keys {
		keys[i] = uint64(i)
		s.Install(uint64(i), Result{ActionID: i})
	}
	results := make([]Result, 16)
	hits := make([]bool, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.LookupBatch(keys, results, hits); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLookupScalar16Sequential(b *testing.B) {
	// The RMT way to process 16 keys: 16 separate single lookups
	// (i.e. 16 recirculated packets). Compare with BenchmarkLookupBatchArray16.
	s := NewStageMemory(ModeScalar, 16, 64*1024, 1)
	for i := 0; i < 16; i++ {
		s.Install(uint64(i), Result{ActionID: i})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := uint64(0); k < 16; k++ {
			s.Lookup(k)
		}
	}
}

// Ablation (DESIGN.md decision 3): the three stage-memory organizations on
// the same 16-key batch.
func BenchmarkStageModes16Keys(b *testing.B) {
	modes := []struct {
		name string
		mem  *StageMemory
	}{
		{"scalar-replicated", func() *StageMemory {
			m := NewStageMemory(ModeScalar, 16, 64*1024, 1)
			m.ConfigureReplication(16)
			return m
		}()},
		{"array-interconnect", NewStageMemory(ModeArray, 16, 64*1024, 1)},
		{"multi-clock", NewStageMemory(ModeMultiClock, 16, 64*1024, 16)},
	}
	keys := make([]uint64, 16)
	for i := range keys {
		keys[i] = uint64(i)
	}
	for _, m := range modes {
		for _, k := range keys {
			m.mem.Install(k, Result{})
		}
		results := make([]Result, 16)
		hits := make([]bool, 16)
		b.Run(m.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := m.mem.LookupBatch(keys, results, hits); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(m.mem.EffectiveCapacity()), "effective-entries")
			b.ReportMetric(float64(m.mem.MemoryClockMultiple()), "mem-clock-mult")
		})
	}
}
