package mat

import (
	"testing"
	"testing/quick"
)

func TestExactTableBasics(t *testing.T) {
	tb := NewExactTable(4)
	if tb.Capacity() != 4 || tb.Len() != 0 {
		t.Fatal("fresh table geometry wrong")
	}
	if err := tb.Insert(1, Result{ActionID: 10}); err != nil {
		t.Fatal(err)
	}
	r, ok := tb.Lookup(1)
	if !ok || r.ActionID != 10 {
		t.Errorf("Lookup(1) = %+v, %v", r, ok)
	}
	if _, ok := tb.Lookup(2); ok {
		t.Error("missing key hit")
	}
	tb.Delete(1)
	if _, ok := tb.Lookup(1); ok {
		t.Error("deleted key still hits")
	}
	tb.Delete(99) // no-op
}

func TestExactTableCapacity(t *testing.T) {
	tb := NewExactTable(2)
	tb.Insert(1, Result{})
	tb.Insert(2, Result{})
	if err := tb.Insert(3, Result{}); err != ErrTableFull {
		t.Errorf("overflow insert err = %v, want ErrTableFull", err)
	}
	// Replacing an existing key is allowed at capacity.
	if err := tb.Insert(2, Result{ActionID: 5}); err != nil {
		t.Errorf("replace at capacity failed: %v", err)
	}
	r, _ := tb.Lookup(2)
	if r.ActionID != 5 {
		t.Error("replace did not take")
	}
}

func TestLPMLongestWins(t *testing.T) {
	tb := NewLPMTable(10)
	if err := tb.InsertPrefix(0x0A000000, 8, Result{ActionID: 1}); err != nil { // 10/8
		t.Fatal(err)
	}
	if err := tb.InsertPrefix(0x0A0B0000, 16, Result{ActionID: 2}); err != nil { // 10.11/16
		t.Fatal(err)
	}
	if err := tb.InsertPrefix(0, 0, Result{ActionID: 3}); err != nil { // default
		t.Fatal(err)
	}
	cases := []struct {
		key  uint64
		want int
	}{
		{0x0A0B0C0D, 2}, // matches /16
		{0x0AFF0000, 1}, // matches /8 only
		{0x0B000000, 3}, // default
	}
	for _, c := range cases {
		r, ok := tb.Lookup(c.key)
		if !ok || r.ActionID != c.want {
			t.Errorf("Lookup(%x) = %+v/%v, want action %d", c.key, r, ok, c.want)
		}
	}
}

func TestLPMCapacityAndDelete(t *testing.T) {
	tb := NewLPMTable(2)
	tb.InsertPrefix(0x01000000, 8, Result{})
	tb.InsertPrefix(0x02000000, 8, Result{})
	if err := tb.InsertPrefix(0x03000000, 8, Result{}); err != ErrTableFull {
		t.Errorf("err = %v, want ErrTableFull", err)
	}
	// Replacing an existing rule works at capacity.
	if err := tb.InsertPrefix(0x01000000, 8, Result{ActionID: 9}); err != nil {
		t.Errorf("replace: %v", err)
	}
	tb.DeletePrefix(0x01000000, 8)
	if tb.Len() != 1 {
		t.Errorf("Len = %d after delete, want 1", tb.Len())
	}
	if _, ok := tb.Lookup(0x01020304); ok {
		t.Error("deleted prefix still matches")
	}
	// Table interface path: 32-bit exact.
	if err := tb.Insert(0xAABBCCDD, Result{ActionID: 7}); err != nil {
		t.Fatal(err)
	}
	if r, ok := tb.Lookup(0xAABBCCDD); !ok || r.ActionID != 7 {
		t.Error("exact /32 rule broken")
	}
	tb.Delete(0xAABBCCDD)
	if _, ok := tb.Lookup(0xAABBCCDD); ok {
		t.Error("Delete of /32 rule failed")
	}
}

func TestLPMBadLength(t *testing.T) {
	tb := NewLPMTable(2)
	if err := tb.InsertPrefix(0, 33, Result{}); err == nil {
		t.Error("length 33 accepted")
	}
	if err := tb.InsertPrefix(0, -1, Result{}); err == nil {
		t.Error("negative length accepted")
	}
}

func TestTernaryPriority(t *testing.T) {
	tb := NewTernaryTable(10)
	// Low-priority catch-all, higher-priority specific.
	tb.InsertRule(0, 0, 1, Result{ActionID: 1})
	tb.InsertRule(0x0F00, 0xFF00, 10, Result{ActionID: 2})
	r, ok := tb.Lookup(0x0F42)
	if !ok || r.ActionID != 2 {
		t.Errorf("specific rule lost: %+v", r)
	}
	r, ok = tb.Lookup(0x1234)
	if !ok || r.ActionID != 1 {
		t.Errorf("catch-all lost: %+v", r)
	}
}

func TestTernaryCapacityDelete(t *testing.T) {
	tb := NewTernaryTable(2)
	tb.Insert(5, Result{ActionID: 1})
	tb.Insert(6, Result{ActionID: 2})
	if err := tb.Insert(7, Result{}); err != ErrTableFull {
		t.Errorf("err = %v, want ErrTableFull", err)
	}
	tb.Delete(5)
	if tb.Len() != 1 {
		t.Errorf("Len = %d, want 1", tb.Len())
	}
	if _, ok := tb.Lookup(5); ok {
		t.Error("deleted rule still matches")
	}
	if err := tb.Insert(7, Result{ActionID: 3}); err != nil {
		t.Errorf("insert after delete: %v", err)
	}
}

func TestTernaryNoMatch(t *testing.T) {
	tb := NewTernaryTable(4)
	tb.InsertRule(0xFF, 0xFF, 0, Result{})
	if _, ok := tb.Lookup(0xFE); ok {
		t.Error("non-matching key hit")
	}
}

// Property: exact table stores and retrieves arbitrary key sets faithfully.
func TestExactTableProperty(t *testing.T) {
	f := func(keys []uint64) bool {
		tb := NewExactTable(len(keys) + 1)
		want := make(map[uint64]int)
		for i, k := range keys {
			want[k] = i
			if err := tb.Insert(k, Result{ActionID: i}); err != nil {
				return false
			}
		}
		for k, i := range want {
			r, ok := tb.Lookup(k)
			if !ok || r.ActionID != i {
				return false
			}
		}
		return tb.Len() == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: LPM default route catches everything when present.
func TestLPMDefaultProperty(t *testing.T) {
	tb := NewLPMTable(10)
	tb.InsertPrefix(0, 0, Result{ActionID: 42})
	f := func(key uint32) bool {
		r, ok := tb.Lookup(uint64(key))
		return ok && r.ActionID >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: ternary lookup honors mask semantics.
func TestTernaryMaskProperty(t *testing.T) {
	f := func(value, mask, key uint64) bool {
		tb := NewTernaryTable(1)
		tb.InsertRule(value, mask, 0, Result{ActionID: 1})
		_, ok := tb.Lookup(key)
		return ok == (key&mask == value&mask)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHashToBucketCoverageAndDeterminism(t *testing.T) {
	seen := make(map[int]int)
	for k := uint64(0); k < 10000; k++ {
		b := HashToBucket(k, 8)
		if b < 0 || b >= 8 {
			t.Fatalf("bucket %d out of range", b)
		}
		seen[b]++
		if HashToBucket(k, 8) != b {
			t.Fatal("HashToBucket not deterministic")
		}
	}
	for b := 0; b < 8; b++ {
		if seen[b] < 800 { // expect ~1250 each; generous bound
			t.Errorf("bucket %d badly underloaded: %d", b, seen[b])
		}
	}
	// Non-power-of-two path.
	for k := uint64(0); k < 1000; k++ {
		b := HashToBucket(k, 7)
		if b < 0 || b >= 7 {
			t.Fatalf("bucket %d out of [0,7)", b)
		}
	}
	mustPanicMat(t, func() { HashToBucket(1, 0) })
}

func mustPanicMat(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	fn()
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 64: 6, 65: 7}
	for n, want := range cases {
		if got := Log2Ceil(n); got != want {
			t.Errorf("Log2Ceil(%d) = %d, want %d", n, got, want)
		}
	}
}

func BenchmarkExactLookup(b *testing.B) {
	tb := NewExactTable(1 << 16)
	for i := 0; i < 1<<16; i++ {
		tb.Insert(uint64(i), Result{ActionID: i})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Lookup(uint64(i) & 0xFFFF)
	}
}

// Property: LPM lookup agrees with a brute-force longest-prefix scan for
// random rule sets and probes.
func TestLPMBruteForceProperty(t *testing.T) {
	f := func(seeds []uint32, probe uint32) bool {
		tb := NewLPMTable(64)
		type rule struct {
			prefix uint32
			length int
			action int
		}
		var rules []rule
		for i, s := range seeds {
			if i >= 20 {
				break
			}
			length := int(s % 33)
			prefix := s & lpmMask(length)
			if err := tb.InsertPrefix(prefix, length, Result{ActionID: i + 1}); err != nil {
				return false
			}
			// Mirror the table's replace semantics: same (prefix, length)
			// overwrites.
			replaced := false
			for j := range rules {
				if rules[j].prefix == prefix && rules[j].length == length {
					rules[j].action = i + 1
					replaced = true
					break
				}
			}
			if !replaced {
				rules = append(rules, rule{prefix, length, i + 1})
			}
		}
		// Brute force: longest matching prefix wins; ties on length are
		// impossible (same prefix+length replaced above).
		best, bestLen := 0, -1
		for _, r := range rules {
			if probe&lpmMask(r.length) == r.prefix && r.length > bestLen {
				best, bestLen = r.action, r.length
			}
		}
		got, ok := tb.Lookup(uint64(probe))
		if bestLen < 0 {
			return !ok
		}
		return ok && got.ActionID == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
