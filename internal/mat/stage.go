package mat

import "fmt"

// MemoryMode selects how a stage's table memory is organized.
type MemoryMode int

// Stage memory organizations.
const (
	// ModeScalar is classic RMT: the stage's SRAM is statically sliced
	// across MAUs; matching k keys of one packet against the same logical
	// table requires k replicated copies, dividing effective capacity by k
	// (paper Figure 3).
	ModeScalar MemoryMode = iota
	// ModeArray is ADCP §3.2: per-MAU memories are interconnected so all
	// MAUs of a stage look up one shared table simultaneously. No
	// replication; k ≤ MAUs keys match in a single pipeline cycle.
	ModeArray
	// ModeMultiClock is the §4 variant: one shared memory clocked n× the
	// pipeline clock retires n serialized lookups per pipeline cycle.
	ModeMultiClock
)

// String returns the mode mnemonic.
func (m MemoryMode) String() string {
	switch m {
	case ModeScalar:
		return "scalar"
	case ModeArray:
		return "array"
	case ModeMultiClock:
		return "multiclock"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// StageMemory models the match-table SRAM of one pipeline stage.
type StageMemory struct {
	mode        MemoryMode
	numMAUs     int
	capacity    int // total entries of SRAM in the stage
	clockMult   int // memory clock multiple (ModeMultiClock)
	replication int // configured table copies (ModeScalar)

	shared   *ExactTable   // ModeArray / ModeMultiClock
	replicas []*ExactTable // ModeScalar

	lookups uint64
	cycles  uint64
}

// StageMAUs is the MAU count per stage the paper quotes for current RMT
// switches ("the switches, however, do have 16 match action units per
// stage").
const StageMAUs = 16

// NewStageMemory builds a stage memory. numMAUs and capacity must be
// positive; clockMult is only consulted in ModeMultiClock (minimum 1).
func NewStageMemory(mode MemoryMode, numMAUs, capacity, clockMult int) *StageMemory {
	if numMAUs <= 0 || capacity <= 0 {
		panic("mat: non-positive stage geometry")
	}
	if clockMult < 1 {
		clockMult = 1
	}
	s := &StageMemory{mode: mode, numMAUs: numMAUs, capacity: capacity, clockMult: clockMult}
	s.configure(1)
	return s
}

// configure lays out the SRAM for a given replication factor.
func (s *StageMemory) configure(replication int) {
	s.replication = replication
	switch s.mode {
	case ModeScalar:
		per := s.capacity / replication
		s.replicas = make([]*ExactTable, replication)
		for i := range s.replicas {
			s.replicas[i] = NewExactTable(per)
		}
		s.shared = nil
	default:
		s.shared = NewExactTable(s.capacity)
		s.replicas = nil
	}
}

// ConfigureReplication re-lays out a scalar stage for k table copies,
// discarding installed entries. It errors in non-scalar modes (ADCP needs
// no replication — that is the point) and when k exceeds the MAU count or
// leaves zero entries per copy.
func (s *StageMemory) ConfigureReplication(k int) error {
	if s.mode != ModeScalar {
		return fmt.Errorf("mat: replication is a scalar-mode concept (mode %v)", s.mode)
	}
	if k < 1 || k > s.numMAUs {
		return fmt.Errorf("mat: replication %d out of range [1,%d]", k, s.numMAUs)
	}
	if s.capacity/k == 0 {
		return fmt.Errorf("mat: replication %d leaves zero entries per copy", k)
	}
	s.configure(k)
	return nil
}

// Mode returns the memory organization.
func (s *StageMemory) Mode() MemoryMode { return s.mode }

// Replication returns the configured replication factor (1 outside scalar).
func (s *StageMemory) Replication() int { return s.replication }

// Parallelism returns how many keys of one packet the stage can match in a
// single pipeline traversal.
func (s *StageMemory) Parallelism() int {
	switch s.mode {
	case ModeScalar:
		return s.replication
	case ModeArray:
		return s.numMAUs
	case ModeMultiClock:
		return s.clockMult
	default:
		return 1
	}
}

// EffectiveCapacity returns the number of distinct entries the logical
// table can hold: total SRAM divided by the replication factor in scalar
// mode (Figure 3), the full SRAM otherwise.
func (s *StageMemory) EffectiveCapacity() int {
	if s.mode == ModeScalar {
		return s.capacity / s.replication
	}
	return s.capacity
}

// Install adds an entry to the logical table: once into shared memory, or
// into every replica in scalar mode (consuming k× the SRAM).
func (s *StageMemory) Install(key uint64, r Result) error {
	if s.mode == ModeScalar {
		for _, t := range s.replicas {
			if err := t.Insert(key, r); err != nil {
				return err
			}
		}
		return nil
	}
	return s.shared.Insert(key, r)
}

// Installed returns the number of distinct logical entries.
func (s *StageMemory) Installed() int {
	if s.mode == ModeScalar {
		return s.replicas[0].Len()
	}
	return s.shared.Len()
}

// SRAMUsed returns total SRAM entries consumed, including replication.
func (s *StageMemory) SRAMUsed() int {
	if s.mode == ModeScalar {
		n := 0
		for _, t := range s.replicas {
			n += t.Len()
		}
		return n
	}
	return s.shared.Len()
}

// Lookup matches a single key (MAU 0 in scalar mode). Costs one pipeline
// cycle.
func (s *StageMemory) Lookup(key uint64) (Result, bool) {
	s.lookups++
	s.cycles++
	if s.mode == ModeScalar {
		return s.replicas[0].Lookup(key)
	}
	return s.shared.Lookup(key)
}

// ErrBatchTooWide is returned when a batch exceeds the stage's parallelism;
// the caller (pipeline/switch) must recirculate or split the packet.
var ErrBatchTooWide = fmt.Errorf("mat: batch exceeds stage parallelism")

// LookupBatch matches keys (one per MAU / memory beat) in a single pipeline
// traversal, writing results and hit flags into the provided slices (which
// must be at least len(keys) long). It returns the pipeline cycles consumed
// — always 1: scalar replicas and the array interconnect match in parallel,
// and the multi-clock memory hides its serialization behind its faster
// clock. Batches wider than Parallelism return ErrBatchTooWide.
func (s *StageMemory) LookupBatch(keys []uint64, results []Result, hits []bool) (int, error) {
	if len(keys) > s.Parallelism() {
		return 0, ErrBatchTooWide
	}
	s.lookups += uint64(len(keys))
	s.cycles++
	switch s.mode {
	case ModeScalar:
		for i, k := range keys {
			results[i], hits[i] = s.replicas[i].Lookup(k)
		}
	default:
		for i, k := range keys {
			results[i], hits[i] = s.shared.Lookup(k)
		}
	}
	return 1, nil
}

// MemoryClockMultiple returns the clock ratio the §4 multi-clock design
// needs to sustain this stage's parallelism (1 in other modes).
func (s *StageMemory) MemoryClockMultiple() int {
	if s.mode == ModeMultiClock {
		return s.clockMult
	}
	return 1
}

// Lookups returns total key lookups served.
func (s *StageMemory) Lookups() uint64 { return s.lookups }

// Cycles returns total pipeline cycles consumed by lookups.
func (s *StageMemory) Cycles() uint64 { return s.cycles }
