package mat

import (
	"testing"
	"testing/quick"
)

// covered reports whether v matches any rule.
func covered(rules []TernaryRule, v uint64) bool {
	for _, r := range rules {
		if v&r.Mask == r.Value {
			return true
		}
	}
	return false
}

func TestRangeToTernaryExactSmall(t *testing.T) {
	// Brute-force exactness over all 8-bit ranges.
	for lo := uint64(0); lo < 256; lo++ {
		for hi := lo; hi < 256; hi++ {
			rules := RangeToTernary(lo, hi, 8)
			if len(rules) == 0 {
				t.Fatalf("[%d,%d]: no rules", lo, hi)
			}
			if len(rules) > 14 { // 2w-2 bound
				t.Fatalf("[%d,%d]: %d rules exceeds 2w-2", lo, hi, len(rules))
			}
			for v := uint64(0); v < 256; v++ {
				want := v >= lo && v <= hi
				if covered(rules, v) != want {
					t.Fatalf("[%d,%d]: value %d covered=%v want %v (rules %v)",
						lo, hi, v, !want, want, rules)
				}
			}
		}
	}
}

func TestRangeToTernarySingletonAndFull(t *testing.T) {
	one := RangeToTernary(42, 42, 16)
	if len(one) != 1 || one[0].Value != 42 || one[0].Mask != 0xFFFF {
		t.Errorf("singleton = %v", one)
	}
	full := RangeToTernary(0, 0xFFFF, 16)
	if len(full) != 1 || full[0].Mask != 0 {
		t.Errorf("full range = %v", full)
	}
}

func TestRangeToTernaryDegenerate(t *testing.T) {
	if RangeToTernary(5, 4, 8) != nil {
		t.Error("inverted range returned rules")
	}
	if RangeToTernary(300, 400, 8) != nil {
		t.Error("lo beyond width returned rules")
	}
	if RangeToTernary(0, 10, 0) != nil || RangeToTernary(0, 10, 65) != nil {
		t.Error("bad widths returned rules")
	}
	// hi clamped to the width.
	r := RangeToTernary(250, 1000, 8)
	if !covered(r, 255) || covered(r, 249) {
		t.Errorf("clamped range wrong: %v", r)
	}
}

func TestRangeToTernary64BitFull(t *testing.T) {
	full := RangeToTernary(0, ^uint64(0), 64)
	if len(full) != 1 || full[0].Mask != 0 || full[0].Value != 0 {
		t.Errorf("full 64-bit = %v", full)
	}
	top := RangeToTernary(^uint64(0)-3, ^uint64(0), 64)
	if len(top) != 1 || !covered(top, ^uint64(0)) || covered(top, ^uint64(0)-4) {
		t.Errorf("top-of-space = %v", top)
	}
}

// Property: exactness for random 16-bit ranges at sampled points.
func TestRangeToTernaryProperty(t *testing.T) {
	f := func(a, b, probe uint16) bool {
		lo, hi := uint64(a), uint64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		rules := RangeToTernary(lo, hi, 16)
		v := uint64(probe)
		return covered(rules, v) == (v >= lo && v <= hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestInstallRange(t *testing.T) {
	tb := NewTernaryTable(64)
	n, err := InstallRange(tb, 100, 200, 16, 5, Result{ActionID: 9})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || n != tb.Len() {
		t.Errorf("entries = %d, table has %d", n, tb.Len())
	}
	if r, ok := tb.Lookup(150); !ok || r.ActionID != 9 {
		t.Error("in-range lookup missed")
	}
	if _, ok := tb.Lookup(99); ok {
		t.Error("below-range matched")
	}
	if _, ok := tb.Lookup(201); ok {
		t.Error("above-range matched")
	}
	// Capacity exhaustion propagates.
	tiny := NewTernaryTable(1)
	if _, err := InstallRange(tiny, 1, 100, 16, 0, Result{}); err == nil {
		t.Error("overflow accepted")
	}
}

func BenchmarkRangeToTernary32(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RangeToTernary(1000, 2_000_000, 32)
	}
}
