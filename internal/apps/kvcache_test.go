package apps

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/packet"
)

func kvGet(src int, keys ...uint32) *packet.Packet {
	pairs := make([]packet.KVPair, len(keys))
	for i, k := range keys {
		pairs[i] = packet.KVPair{Key: k}
	}
	p := packet.Build(packet.Header{Proto: packet.ProtoKV, SrcPort: uint16(src), CoflowID: 9},
		&packet.KVHeader{Op: packet.KVGet, Pairs: pairs})
	p.IngressPort = src
	return p
}

func TestKVCacheADCPHitsAndMisses(t *testing.T) {
	kv := KVConfig{KeysPerPacket: 8, CacheEntries: 100}
	sw, err := NewKVCacheADCP(smallADCP(), kv)
	if err != nil {
		t.Fatal(err)
	}
	// Install keys 1..100 with value = key*10, partition-aware batching.
	for k := uint32(1); k <= 100; k++ {
		if err := sw.Install(k, k*10); err != nil {
			t.Fatal(err)
		}
	}
	// SRAM cost: exactly 100 entries across the global area.
	if sw.SRAMUsed() != 100 {
		t.Errorf("SRAM = %d, want 100 (no replication)", sw.SRAMUsed())
	}
	// A GET batch whose keys share a partition.
	batches := PartitionKV([]packet.KVPair{
		{Key: 1}, {Key: 2}, {Key: 3}, {Key: 4}, {Key: 5}, {Key: 6}, {Key: 7}, {Key: 8},
	}, sw.Config().CentralPipelines, 8)
	total := 0
	for _, batch := range batches {
		keys := make([]uint32, len(batch))
		for i, p := range batch {
			keys[i] = p.Key
		}
		out, err := sw.Process(kvGet(2, keys...))
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 1 || out[0].EgressPort != 2 {
			t.Fatalf("reply = %v", out)
		}
		var d packet.Decoded
		if err := d.DecodePacket(out[0]); err != nil {
			t.Fatal(err)
		}
		if d.KV.Op != packet.KVHit {
			t.Errorf("op = %v, want hit", d.KV.Op)
		}
		for _, pr := range d.KV.Pairs {
			if pr.Value != pr.Key*10 {
				t.Errorf("key %d value %d", pr.Key, pr.Value)
			}
			total++
		}
	}
	if total != 8 {
		t.Errorf("total pairs served = %d", total)
	}
	if sw.Hits() != 8 {
		t.Errorf("Hits = %d, want 8", sw.Hits())
	}
	// Miss path.
	out, err := sw.Process(kvGet(3, 9999))
	if err != nil {
		t.Fatal(err)
	}
	var d packet.Decoded
	d.DecodePacket(out[0])
	if d.KV.Op != packet.KVMiss {
		t.Errorf("op = %v, want miss", d.KV.Op)
	}
}

func TestKVCacheADCPPut(t *testing.T) {
	sw, err := NewKVCacheADCP(smallADCP(), KVConfig{KeysPerPacket: 4, CacheEntries: 10})
	if err != nil {
		t.Fatal(err)
	}
	put := packet.Build(packet.Header{Proto: packet.ProtoKV, SrcPort: 1, CoflowID: 9},
		&packet.KVHeader{Op: packet.KVPut, Pairs: []packet.KVPair{{Key: 42, Value: 777}}})
	put.IngressPort = 1
	if _, err := sw.Process(put); err != nil {
		t.Fatal(err)
	}
	out, err := sw.Process(kvGet(1, 42))
	if err != nil {
		t.Fatal(err)
	}
	var d packet.Decoded
	d.DecodePacket(out[0])
	if d.KV.Op != packet.KVHit || d.KV.Pairs[0].Value != 777 {
		t.Errorf("after PUT: %+v", d.KV)
	}
}

func TestKVCacheRMTReplicationCost(t *testing.T) {
	kv := KVConfig{KeysPerPacket: 8, CacheEntries: 100}
	cfg := smallRMT()
	sw, err := NewKVCacheRMT(cfg, kv)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint32(1); k <= 100; k++ {
		if err := sw.Install(k, k*10); err != nil {
			t.Fatal(err)
		}
	}
	// SRAM cost: 100 entries × 8 copies × 2 pipelines = 1600.
	if sw.SRAMUsed() != 1600 {
		t.Errorf("SRAM = %d, want 1600 (Figure 3 replication × pipeline copies)", sw.SRAMUsed())
	}
	// Effective capacity per pipeline = 4096/8.
	if got := sw.EffectiveCapacity(); got != 512 {
		t.Errorf("effective capacity = %d, want 512", got)
	}
	// Lookups still work, from any client port, one traversal.
	out, err := sw.Process(kvGet(5, 1, 2, 3, 4, 5, 6, 7, 8))
	if err != nil {
		t.Fatal(err)
	}
	var d packet.Decoded
	d.DecodePacket(out[0])
	if d.KV.Op != packet.KVHit {
		t.Errorf("op = %v", d.KV.Op)
	}
	for _, pr := range d.KV.Pairs {
		if pr.Value != pr.Key*10 {
			t.Errorf("key %d value %d", pr.Key, pr.Value)
		}
	}
}

func TestKVCacheRMTCapacityExhaustion(t *testing.T) {
	// 4096-entry stages with 16-fold replication hold 256 distinct keys;
	// entry 257 must fail — the Figure 3 capacity loss made concrete.
	kv := KVConfig{KeysPerPacket: 16, CacheEntries: 300}
	sw, err := NewKVCacheRMT(smallRMT(), kv)
	if err != nil {
		t.Fatal(err)
	}
	var failed int
	for k := uint32(0); k < 300; k++ {
		if err := sw.Install(k, k); err != nil {
			failed++
		}
	}
	if failed != 300-256 {
		t.Errorf("failed installs = %d, want 44", failed)
	}
	// The ADCP build holds all 300 with room to spare.
	asw, err := NewKVCacheADCP(smallADCP(), kv)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint32(0); k < 300; k++ {
		if err := asw.Install(k, k); err != nil {
			t.Fatalf("ADCP install %d: %v", k, err)
		}
	}
}

func TestKVCacheRMTTooManyKeys(t *testing.T) {
	if _, err := NewKVCacheRMT(smallRMT(), KVConfig{KeysPerPacket: 32, CacheEntries: 1}); err == nil {
		t.Error("32 keys over 16 MAUs accepted")
	}
}

func TestKVCacheValidation(t *testing.T) {
	if _, err := NewKVCacheADCP(smallADCP(), KVConfig{}); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := NewKVCacheRMT(smallRMT(), KVConfig{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestPartitionKV(t *testing.T) {
	pairs := make([]packet.KVPair, 100)
	for i := range pairs {
		pairs[i] = packet.KVPair{Key: uint32(i)}
	}
	batches := PartitionKV(pairs, 4, 8)
	seen := 0
	sw, _ := NewKVCacheADCP(smallADCP(), KVConfig{KeysPerPacket: 8, CacheEntries: 1})
	for _, b := range batches {
		if len(b) == 0 || len(b) > 8 {
			t.Fatalf("batch size %d", len(b))
		}
		// All keys of a batch share a partition.
		p0 := sw.PartitionOf(b[0].Key)
		for _, pr := range b {
			if sw.PartitionOf(pr.Key) != p0 {
				t.Fatal("mixed-partition batch")
			}
			seen++
		}
	}
	if seen != 100 {
		t.Errorf("covered %d pairs", seen)
	}
}

func TestKVCacheEndToEndNetwork(t *testing.T) {
	kv := KVConfig{KeysPerPacket: 4, CacheEntries: 50}
	sw, err := NewKVCacheADCP(smallADCP(), kv)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint32(0); k < 50; k++ {
		sw.Install(k, k+1000)
	}
	n, err := netsim.New(netsim.DefaultConfig(8), sw)
	if err != nil {
		t.Fatal(err)
	}
	// Each host sends a single-partition batch.
	sent := 0
	for h := 0; h < 8; h++ {
		batches := PartitionKV([]packet.KVPair{{Key: uint32(h)}, {Key: uint32(h + 8)}}, 4, 4)
		for _, b := range batches {
			keys := make([]uint32, len(b))
			for i, p := range b {
				keys[i] = p.Key
			}
			n.SendAt(h, kvGet(h, keys...), 0)
			sent++
		}
	}
	n.Tracker().Expect(9, sent)
	n.Run()
	if int(n.Delivered()) != sent {
		t.Errorf("delivered %d of %d; errs %v", n.Delivered(), sent, n.Errors())
	}
	for h := 0; h < 8; h++ {
		for _, p := range n.Host(h).Received {
			var d packet.Decoded
			if err := d.DecodePacket(p); err != nil {
				t.Fatal(err)
			}
			if d.KV.Op != packet.KVHit {
				t.Errorf("host %d got %v", h, d.KV.Op)
			}
		}
	}
}
