package apps

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/workload"
)

func dbConfig() DBConfig {
	return DBConfig{KeySpace: 64, DestHosts: []int{5, 6, 7}, TuplesPerPacket: 8}
}

// expectedCounts aggregates the workload's tuples in Go as ground truth.
func expectedCounts(injs []workload.Injection) map[uint32]uint32 {
	want := make(map[uint32]uint32)
	var d packet.Decoded
	for _, inj := range injs {
		if err := d.DecodePacket(inj.Pkt); err != nil {
			panic(err)
		}
		for _, tp := range d.DB.Tuples {
			want[tp.Key] += tp.Measure
		}
	}
	return want
}

// repartitioned rewrites the workload with partition-pure batches (what a
// shuffle producer does for the switch's partitioner).
func repartitioned(t *testing.T, injs []workload.Injection, partitions, maxBatch int) []workload.Injection {
	t.Helper()
	var out []workload.Injection
	var d packet.Decoded
	for _, inj := range injs {
		if err := d.DecodePacket(inj.Pkt); err != nil {
			t.Fatal(err)
		}
		hdr := d.Base
		for _, batch := range PartitionTuples(d.DB.Tuples, partitions, maxBatch) {
			pkt := packet.Build(packet.Header{
				Proto: packet.ProtoDB, SrcPort: hdr.SrcPort, CoflowID: hdr.CoflowID, FlowID: hdr.FlowID,
			}, &packet.DBHeader{Query: d.DB.Query, Stage: 0, Tuples: batch})
			out = append(out, workload.Injection{Src: inj.Src, Pkt: pkt, At: inj.At})
		}
	}
	return out
}

func TestDBShuffleADCPAggregatesAndFlushes(t *testing.T) {
	db := dbConfig()
	sw, err := NewDBShuffleADCP(smallADCP(), db)
	if err != nil {
		t.Fatal(err)
	}
	injs, _, err := workload.DB(workload.DBParams{
		CoflowID: 11, Query: 1, Sources: 4, TuplesPerSource: 200,
		TuplesPerPacket: 8, KeySpace: db.KeySpace, Selectivity: 0.5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := expectedCounts(injs)
	P := sw.Config().CentralPipelines
	for _, inj := range repartitioned(t, injs, P, db.TuplesPerPacket) {
		inj.Pkt.IngressPort = inj.Src
		if _, err := sw.Process(inj.Pkt); err != nil {
			t.Fatal(err)
		}
	}
	// Aggregates match ground truth before any flush.
	got := DBAggregatesADCP(sw, db)
	if len(got) != len(want) {
		t.Fatalf("aggregated %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("key %d = %d, want %d", k, got[k], v)
		}
	}
	// Flush each partition; results land on the right destination hosts.
	received := make(map[uint32]uint32)
	for p := 0; p < P; p++ {
		fp := FlushPacket(11, 1, p)
		fp.IngressPort = 0
		outs, err := sw.Process(fp)
		if err != nil {
			t.Fatal(err)
		}
		var d packet.Decoded
		for _, o := range outs {
			if err := d.DecodePacket(o); err != nil {
				t.Fatal(err)
			}
			if d.DB.Stage != 2 {
				t.Errorf("result stage = %d", d.DB.Stage)
			}
			for _, tp := range d.DB.Tuples {
				if o.EgressPort != db.destOf(tp.Key) {
					t.Errorf("key %d delivered on port %d, want %d", tp.Key, o.EgressPort, db.destOf(tp.Key))
				}
				received[tp.Key] += tp.Measure
			}
		}
	}
	for k, v := range want {
		if received[k] != v {
			t.Errorf("flushed key %d = %d, want %d", k, received[k], v)
		}
	}
}

func TestDBShuffleRMTAggregatesWithRecirculation(t *testing.T) {
	db := dbConfig()
	cfg := smallRMT() // 6 stages → 5 tuples per pass
	sw, err := NewDBShuffleRMT(cfg, db)
	if err != nil {
		t.Fatal(err)
	}
	injs, total, err := workload.DB(workload.DBParams{
		CoflowID: 12, Query: 1, Sources: 4, TuplesPerSource: 100,
		TuplesPerPacket: 8, KeySpace: db.KeySpace, Selectivity: 0.5, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := expectedCounts(injs)
	for _, inj := range injs {
		inj.Pkt.IngressPort = inj.Src
		if _, err := sw.Process(inj.Pkt); err != nil {
			t.Fatal(err)
		}
	}
	got := DBAggregatesRMT(sw, db)
	sum := uint32(0)
	for k, v := range want {
		if got[k] != v {
			t.Errorf("key %d = %d, want %d", k, got[k], v)
		}
		sum += v
	}
	if int(sum) != total {
		t.Fatalf("ground truth inconsistent: %d vs %d", sum, total)
	}
	// Every packet needed the loopback steer (sources 0..3 are on
	// pipeline 0, aggregation is pipeline 1) plus width recirculations
	// for 8 tuples over 5 usable stages (1 extra pass).
	if sw.RecirculationTraversals() == 0 {
		t.Error("no recirculation recorded — RMT cost missing")
	}
	if sw.IngressOverheadFraction() <= 0.4 {
		t.Errorf("ingress overhead = %v, want > 0.4 (steer + width passes)", sw.IngressOverheadFraction())
	}
}

func TestDBShuffleValidation(t *testing.T) {
	if _, err := NewDBShuffleADCP(smallADCP(), DBConfig{}); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := NewDBShuffleRMT(smallRMT(), DBConfig{}); err == nil {
		t.Error("zero config accepted")
	}
	big := DBConfig{KeySpace: 1 << 20, DestHosts: []int{1}, TuplesPerPacket: 8}
	if _, err := NewDBShuffleADCP(smallADCP(), big); err == nil {
		t.Error("keyspace beyond registers accepted (ADCP)")
	}
	if _, err := NewDBShuffleRMT(smallRMT(), big); err == nil {
		t.Error("keyspace beyond registers accepted (RMT)")
	}
}

func TestPartitionTuples(t *testing.T) {
	tuples := make([]packet.DBTuple, 50)
	for i := range tuples {
		tuples[i] = packet.DBTuple{Key: uint32(i), Measure: 1}
	}
	batches := PartitionTuples(tuples, 4, 8)
	n := 0
	for _, b := range batches {
		if len(b) == 0 || len(b) > 8 {
			t.Fatalf("batch size %d", len(b))
		}
		p := b[0].Key % 4
		for _, tp := range b {
			if tp.Key%4 != p {
				t.Fatal("mixed partitions in batch")
			}
			n++
		}
	}
	if n != 50 {
		t.Errorf("covered %d tuples", n)
	}
}
