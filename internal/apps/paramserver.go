// Package apps implements the in-network applications of the paper's
// Table 1 on both architectures: parameter aggregation (ML), a multi-key
// key/value cache, database filter-aggregate-reshuffle, graph pattern
// mining, and switch-initiated group communication. Each application
// provides an ADCP build (using the global partitioned area and array
// matching) and an RMT build (using the restructurings real deployments
// need: cross-pipeline recirculation, scalar/narrow processing, table
// replication), so the experiments can compare identical workloads.
package apps

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/packet"
	"repro/internal/pipeline"
	"repro/internal/rmt"
)

// PSConfig sizes a parameter-server deployment.
type PSConfig struct {
	// Workers are attached to ports [0, Workers).
	Workers int
	// ModelSize is the number of weights aggregated per round.
	ModelSize int
	// Width is the number of weights per packet. On ADCP any width up to
	// the array width works in one traversal; on RMT each value needs its
	// own stage RMW, so widths beyond the stage budget recirculate.
	Width int
}

// Validate checks the configuration against a switch geometry.
func (c PSConfig) Validate(ports int) error {
	switch {
	case c.Workers <= 0 || c.Workers > ports:
		return fmt.Errorf("apps: %d workers on %d ports", c.Workers, ports)
	case c.ModelSize <= 0 || c.Width <= 0:
		return fmt.Errorf("apps: model %d width %d", c.ModelSize, c.Width)
	case c.ModelSize%c.Width != 0:
		return fmt.Errorf("apps: model %d not chunk-aligned to width %d", c.ModelSize, c.Width)
	}
	return nil
}

// workerPorts lists the result fan-out.
func (c PSConfig) workerPorts() []int {
	ports := make([]int, c.Workers)
	for i := range ports {
		ports[i] = i
	}
	return ports
}

// NewParamServerADCP builds an ADCP switch running the parameter server:
// TM1 partitions weight chunks across central pipelines by chunk index;
// the central program aggregates a whole array per traversal and emits the
// aggregated chunk to every worker port once all contributions arrived.
func NewParamServerADCP(cfg core.Config, ps PSConfig) (*core.Switch, error) {
	if err := ps.Validate(cfg.Ports); err != nil {
		return nil, err
	}
	if ps.Width > cfg.Pipe.PHVBudget.ArrayWidth && cfg.Pipe.PHVBudget.ArrayWidth > 0 {
		return nil, fmt.Errorf("apps: width %d exceeds ADCP array width %d", ps.Width, cfg.Pipe.PHVBudget.ArrayWidth)
	}
	P := cfg.CentralPipelines
	chunks := ps.ModelSize / ps.Width
	chunkRowsPerPipe := (chunks + P - 1) / P
	needCells := chunkRowsPerPipe * ps.Width
	if needCells > cfg.Pipe.RegisterCellsPerStage {
		return nil, fmt.Errorf("apps: need %d register cells per central stage, have %d",
			needCells, cfg.Pipe.RegisterCellsPerStage)
	}

	central := &pipeline.Program{
		Name: "paramserver-central",
		Funcs: []pipeline.StageFunc{
			// Stage 0: contribution counter per chunk.
			func(st *pipeline.Stage, ctx *pipeline.Context) error {
				if ctx.Decoded.Base.Proto != packet.ProtoML {
					return nil // plain traffic flows through
				}
				chunk := int(ctx.Decoded.ML.Base) / ps.Width
				row := chunk / P
				cnt, err := st.RegisterRMW(mat.RegAdd, row, 1)
				if err != nil {
					return err
				}
				ctx.Scratch[0] = cnt // arrivals for this chunk so far
				return nil
			},
			// Stage 1: array-wide aggregation — all weights of the packet
			// update their sum cells in one traversal (§3.2 array
			// support applied to stateful memory).
			func(st *pipeline.Stage, ctx *pipeline.Context) error {
				if ctx.Decoded.Base.Proto != packet.ProtoML {
					return nil
				}
				ml := &ctx.Decoded.ML
				chunk := int(ml.Base) / ps.Width
				row := chunk / P
				for i, v := range ml.Values {
					sum := st.Regs.Execute(mat.RegAdd, row*ps.Width+i, uint64(v))
					ml.Values[i] = uint32(sum)
				}
				if int(ctx.Scratch[0]) == ps.Workers {
					// Last contribution: ml.Values now holds the final
					// sums. Fan the result out to every worker — any
					// port, thanks to TM2 (Figure 5).
					res := packet.Build(packet.Header{
						Proto:    packet.ProtoML,
						CoflowID: ctx.Decoded.Base.CoflowID,
						Flags:    packet.FlagFromSwch,
					}, &packet.MLHeader{Base: ml.Base, Values: ml.Values})
					ctx.Emit(res, ps.workerPorts()...)
				}
				ctx.Verdict = pipeline.VerdictConsume
				return nil
			},
		},
	}

	sw, err := core.New(cfg, core.Programs{Central: central})
	if err != nil {
		return nil, err
	}
	sw.SetPartition(func(ctx *pipeline.Context) int {
		if ctx.Decoded.Base.Proto != packet.ProtoML {
			return int(ctx.Decoded.Base.CoflowID) % P
		}
		return (int(ctx.Decoded.ML.Base) / ps.Width) % P
	})
	return sw, nil
}

// NewParamServerRMT builds an RMT switch running the restructured
// parameter server the way real deployments must (cf. SwitchML):
//
//   - All aggregation state lives in ONE ingress pipeline (the pipeline of
//     port 0). Worker packets arriving on other pipelines are sent to that
//     pipeline's loopback port and burn a second ingress traversal — the
//     §2 recirculation cost of colocating a coflow.
//   - Aggregation is scalar: each pipeline stage performs one register RMW
//     per traversal, so a packet can aggregate at most Stages-1 weights per
//     pass; wider packets recirculate for further passes.
//
// The returned switch has the loopback port marked; the caller must not
// attach a host to it.
func NewParamServerRMT(cfg rmt.Config, ps PSConfig) (*rmt.Switch, error) {
	if err := ps.Validate(cfg.Ports); err != nil {
		return nil, err
	}
	stages := cfg.Pipe.Stages
	usable := stages - 1 // stage 0 routes and counts
	if usable < 1 {
		return nil, fmt.Errorf("apps: %d stages leaves no aggregation stages", stages)
	}
	chunks := ps.ModelSize / ps.Width
	// Each packet covers its width in windows of `usable` values per pass;
	// stage s of pass p aggregates value p·usable+s-1 into cell
	// chunk·passes+p, so cells are unique per (chunk, value index).
	passes := (ps.Width + usable - 1) / usable
	if chunks*passes > cfg.Pipe.RegisterCellsPerStage {
		return nil, fmt.Errorf("apps: %d chunks × %d passes exceed %d register cells",
			chunks, passes, cfg.Pipe.RegisterCellsPerStage)
	}

	ppp := cfg.Ports / cfg.Pipelines
	pipelineOfPort := func(port int) int { return port / ppp }
	// The aggregation pipeline is the last one and its last port is the
	// loopback, keeping ports [0, Ports-1) free for workers.
	loopback := cfg.Ports - 1
	aggPipe := pipelineOfPort(loopback)
	if ps.Workers > loopback {
		return nil, fmt.Errorf("apps: %d workers leave no loopback port (need ≤ %d)", ps.Workers, loopback)
	}

	funcs := make([]pipeline.StageFunc, stages)
	// Stage 0: steer to the aggregation pipeline, count contributions.
	funcs[0] = func(st *pipeline.Stage, ctx *pipeline.Context) error {
		if ctx.Decoded.Base.Proto != packet.ProtoML {
			return nil
		}
		if pipelineOfPort(ctx.Pkt.IngressPort) != aggPipe {
			// Wrong pipeline: loop into the aggregation pipeline. This
			// consumes an egress slot plus a fresh ingress slot.
			ctx.Egress = loopback
			ctx.Scratch[1] = 1 // steering pass marker
			return nil
		}
		ctx.Scratch[1] = 0
		if ctx.ElementOffset == 0 {
			chunk := int(ctx.Decoded.ML.Base) / ps.Width
			cnt, err := st.RegisterRMW(mat.RegAdd, chunk, 1)
			if err != nil {
				return err
			}
			ctx.Scratch[0] = cnt
		}
		return nil
	}
	// Stages 1..: one scalar RMW each — value ElementOffset+s-1.
	for s := 1; s < stages; s++ {
		s := s
		funcs[s] = func(st *pipeline.Stage, ctx *pipeline.Context) error {
			if ctx.Decoded.Base.Proto != packet.ProtoML || ctx.Scratch[1] == 1 {
				return nil
			}
			ml := &ctx.Decoded.ML
			i := ctx.ElementOffset + s - 1
			if i < len(ml.Values) {
				chunk := int(ml.Base) / ps.Width
				pass := ctx.ElementOffset / usable
				cell := chunk*passes + pass
				sum, err := st.RegisterRMW(mat.RegAdd, cell, uint64(ml.Values[i]))
				if err != nil {
					return err
				}
				ml.Values[i] = uint32(sum)
				// The deparser must write the running sums back into the
				// packet: a recirculated pass re-parses the wire bytes,
				// and each value index is aggregated exactly once across
				// passes, so earlier windows must carry their sums.
				ctx.Modified = true
			}
			if s == stages-1 {
				// Last stage: advance the window or finish.
				if ctx.ElementOffset+usable < len(ml.Values) {
					ctx.ElementOffset += usable
					ctx.Verdict = pipeline.VerdictRecirculate
					return nil
				}
				if int(ctx.Scratch[0]) == ps.Workers {
					res := packet.Build(packet.Header{
						Proto:    packet.ProtoML,
						CoflowID: ctx.Decoded.Base.CoflowID,
						Flags:    packet.FlagFromSwch,
					}, &packet.MLHeader{Base: ml.Base, Values: ml.Values})
					ctx.Emit(res, ps.workerPorts()...)
				}
				ctx.Verdict = pipeline.VerdictConsume
			}
			return nil
		}
	}

	sw, err := rmt.New(cfg, &pipeline.Program{Name: "paramserver-rmt", Funcs: funcs}, nil)
	if err != nil {
		return nil, err
	}
	if err := sw.MarkRecirculationPort(loopback); err != nil {
		return nil, err
	}
	return sw, nil
}

// ResetParamServerADCP clears the aggregation state between training
// rounds (a control-plane register wipe, as real deployments do between
// all-reduce windows).
func ResetParamServerADCP(sw *core.Switch) {
	for p := 0; p < sw.Config().CentralPipelines; p++ {
		pl := sw.Central(p)
		for s := 0; s < pl.NumStages(); s++ {
			pl.Stage(s).Regs.Reset()
		}
	}
}

// ResetParamServerRMT clears the RMT aggregation pipeline's registers
// between rounds.
func ResetParamServerRMT(sw *rmt.Switch) {
	for p := 0; p < sw.Config().Pipelines; p++ {
		pl := sw.Ingress(p)
		for s := 0; s < pl.NumStages(); s++ {
			pl.Stage(s).Regs.Reset()
		}
	}
}
