package apps

import (
	"testing"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/rmt"
)

func smallADCP() core.Config {
	cfg := core.DefaultConfig()
	cfg.Ports = 8
	cfg.DemuxFactor = 2
	cfg.CentralPipelines = 4
	cfg.EgressPipelines = 2
	pipe := cfg.Pipe
	pipe.Stages = 4
	pipe.TableEntriesPerStage = 4096
	pipe.RegisterCellsPerStage = 1024
	cfg.Pipe = pipe
	return cfg
}

func smallRMT() rmt.Config {
	cfg := rmt.DefaultConfig()
	cfg.Ports = 8
	cfg.Pipelines = 2
	pipe := cfg.Pipe
	pipe.Stages = 6
	pipe.TableEntriesPerStage = 4096
	pipe.RegisterCellsPerStage = 1024
	cfg.Pipe = pipe
	return cfg
}

func TestParamServerADCPCorrectness(t *testing.T) {
	ps := PSConfig{Workers: 6, ModelSize: 64, Width: 16}
	sw, err := NewParamServerADCP(smallADCP(), ps)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunParamServer(sw, netsim.DefaultConfig(8), ps, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 0 {
		t.Errorf("errors: %v", res.Errors)
	}
	// 4 chunks × 6 workers consumed; 4 results × 6 workers delivered.
	if sw.Consumed() != 24 {
		t.Errorf("Consumed = %d, want 24", sw.Consumed())
	}
	if res.Delivered != 24 {
		t.Errorf("Delivered = %d, want 24", res.Delivered)
	}
	// ADCP: exactly one ingress traversal per input packet, no recirc.
	if sw.IngressTraversals() != 24 {
		t.Errorf("ingress traversals = %d, want 24", sw.IngressTraversals())
	}
}

func TestParamServerRMTCorrectness(t *testing.T) {
	ps := PSConfig{Workers: 6, ModelSize: 20, Width: 5} // width ≤ 5 usable stages
	sw, err := NewParamServerRMT(smallRMT(), ps)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunParamServer(sw, netsim.DefaultConfig(8), ps, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 0 {
		t.Errorf("errors: %v", res.Errors)
	}
	// Workers 0..3 are on pipeline 0; the aggregation pipeline is 1, so
	// packets from 4 of 6 workers must loop through the recirculation
	// port: 4 chunks × 4 workers = 16 extra ingress traversals.
	if got := sw.RecirculationTraversals(); got != 16 {
		t.Errorf("recirc traversals = %d, want 16", got)
	}
	if got := sw.IngressTraversals(); got != 24+16 {
		t.Errorf("ingress traversals = %d, want 40 (24 fresh + 16 recirculated)", got)
	}
	frac := sw.IngressOverheadFraction()
	if frac < 0.39 || frac > 0.41 {
		t.Errorf("ingress overhead = %v, want 0.4", frac)
	}
}

func TestParamServerRMTWidePacketsRecirculate(t *testing.T) {
	// Width 16 over 5 usable stages: ceil(16/5) = 4 passes per packet in
	// the aggregation pipeline.
	ps := PSConfig{Workers: 2, ModelSize: 16, Width: 16}
	sw, err := NewParamServerRMT(smallRMT(), ps)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunParamServer(sw, netsim.DefaultConfig(8), ps, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	// Workers 0,1 on pipeline 0 → each packet: 1 steering pass + loopback
	// + 4 aggregation passes = 1 loopback recirc + 3 width recircs = 4
	// recirc traversals per packet; 2 packets → 8.
	if got := sw.RecirculationTraversals(); got != 8 {
		t.Errorf("recirc traversals = %d, want 8", got)
	}
}

func TestParamServerADCPSingleTraversalForWide(t *testing.T) {
	// The §3.2 contrast: 16-wide packets, ADCP aggregates in ONE central
	// traversal each.
	ps := PSConfig{Workers: 2, ModelSize: 16, Width: 16}
	sw, err := NewParamServerADCP(smallADCP(), ps)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunParamServer(sw, netsim.DefaultConfig(8), ps, 3, 7); err != nil {
		t.Fatal(err)
	}
	if got := sw.CentralTraversals(); got != 2 {
		t.Errorf("central traversals = %d, want 2 (one per input packet)", got)
	}
}

func TestParamServerValidation(t *testing.T) {
	if _, err := NewParamServerADCP(smallADCP(), PSConfig{Workers: 0, ModelSize: 16, Width: 16}); err == nil {
		t.Error("0 workers accepted")
	}
	if _, err := NewParamServerADCP(smallADCP(), PSConfig{Workers: 2, ModelSize: 17, Width: 16}); err == nil {
		t.Error("unaligned model accepted")
	}
	if _, err := NewParamServerADCP(smallADCP(), PSConfig{Workers: 2, ModelSize: 64, Width: 32}); err == nil {
		t.Error("width beyond array accepted")
	}
	// Register exhaustion: too many chunks.
	if _, err := NewParamServerADCP(smallADCP(), PSConfig{Workers: 2, ModelSize: 1 << 20, Width: 16}); err == nil {
		t.Error("register overflow accepted")
	}
	if _, err := NewParamServerRMT(smallRMT(), PSConfig{Workers: 8, ModelSize: 16, Width: 4}); err == nil {
		t.Error("workers occupying the loopback port accepted")
	}
	if _, err := NewParamServerRMT(smallRMT(), PSConfig{Workers: 2, ModelSize: 1 << 20, Width: 16}); err == nil {
		t.Error("RMT register overflow accepted")
	}
}

func TestParamServerScalarWidthOnBoth(t *testing.T) {
	// Width 1 (the scalar format RMT pushes applications toward, §3.2)
	// works on both switches and produces identical results.
	ps := PSConfig{Workers: 3, ModelSize: 8, Width: 1}
	a, err := NewParamServerADCP(smallADCP(), ps)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunParamServer(a, netsim.DefaultConfig(8), ps, 4, 11); err != nil {
		t.Errorf("ADCP scalar: %v", err)
	}
	r, err := NewParamServerRMT(smallRMT(), ps)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunParamServer(r, netsim.DefaultConfig(8), ps, 4, 11); err != nil {
		t.Errorf("RMT scalar: %v", err)
	}
}

func TestParamServerMultiRound(t *testing.T) {
	// Three training rounds with different gradients; the control plane
	// wipes the aggregation registers between rounds.
	ps := PSConfig{Workers: 4, ModelSize: 32, Width: 16}
	asw, err := NewParamServerADCP(smallADCP(), ps)
	if err != nil {
		t.Fatal(err)
	}
	rsw, err := NewParamServerRMT(smallRMT(), ps)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		seed := uint64(100 + round)
		if _, err := RunParamServer(asw, netsim.DefaultConfig(8), ps, uint32(round+1), seed); err != nil {
			t.Fatalf("ADCP round %d: %v", round, err)
		}
		ResetParamServerADCP(asw)
		if _, err := RunParamServer(rsw, netsim.DefaultConfig(8), ps, uint32(round+1), seed); err != nil {
			t.Fatalf("RMT round %d: %v", round, err)
		}
		ResetParamServerRMT(rsw)
	}
}

func TestParamServerWithoutResetCorrupts(t *testing.T) {
	// Negative control: skipping the register wipe makes round 2's sums
	// wrong (they include round 1's residue), so the run harness reports
	// a verification error rather than silently passing.
	ps := PSConfig{Workers: 2, ModelSize: 16, Width: 16}
	sw, err := NewParamServerADCP(smallADCP(), ps)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunParamServer(sw, netsim.DefaultConfig(8), ps, 1, 50); err != nil {
		t.Fatal(err)
	}
	if _, err := RunParamServer(sw, netsim.DefaultConfig(8), ps, 2, 51); err == nil {
		t.Fatal("stale-register round verified clean — corruption undetected")
	}
}

func TestParamServerScale(t *testing.T) {
	// A larger round on the default-geometry ADCP: 15 workers × 128
	// chunks of 16 weights (1920 input packets, 1920 result deliveries),
	// all sums verified. Guards against quadratic blowups in the switch
	// path as well as correctness at scale.
	cfg := core.DefaultConfig() // 16 ports, 1:2 demux, 8 central, 4 egress
	pipe := cfg.Pipe
	pipe.RegisterCellsPerStage = 4096
	cfg.Pipe = pipe
	ps := PSConfig{Workers: 15, ModelSize: 2048, Width: 16}
	sw, err := NewParamServerADCP(cfg, ps)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunParamServer(sw, netsim.DefaultConfig(16), ps, 9, 2026)
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected != 15*128 {
		t.Errorf("injected %d", res.Injected)
	}
	if res.Delivered != 15*128 {
		t.Errorf("delivered %d", res.Delivered)
	}
	if sw.IngressTraversals() != 15*128 {
		t.Errorf("traversals %d", sw.IngressTraversals())
	}
	// Load spreads across all central pipelines.
	for p := 0; p < cfg.CentralPipelines; p++ {
		if sw.Central(p).Packets() == 0 {
			t.Errorf("central %d idle", p)
		}
	}
}
