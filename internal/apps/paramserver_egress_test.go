package apps

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestParamServerRMTEgressAggregatesButPinsOutput(t *testing.T) {
	cfg := smallRMT() // 8 ports, 2 pipelines, 6 stages
	ps := PSConfig{Workers: 6, ModelSize: 20, Width: 5}
	sw, err := NewParamServerRMTEgress(cfg, ps)
	if err != nil {
		t.Fatal(err)
	}
	injs, err := workload.ML(workload.MLParams{
		CoflowID: 31, Workers: ps.Workers, ModelSize: ps.ModelSize,
		ValuesPerPacket: ps.Width, Gap: 100 * sim.Nanosecond, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := netsim.New(netsim.DefaultConfig(8), sw)
	if err != nil {
		t.Fatal(err)
	}
	for _, inj := range injs {
		n.SendAt(inj.Src, inj.Pkt, inj.At)
	}
	n.Run()

	// Zero recirculation — that is this variant's advantage.
	if sw.RecirculationTraversals() != 0 {
		t.Errorf("egress variant recirculated %d times", sw.RecirculationTraversals())
	}
	// But results reach ONLY the anchor port (7): workers 0..5 on other
	// ports receive nothing — the Figure 2 pinning.
	anchor := 7
	chunks := ps.ModelSize / ps.Width
	if got := int(sw.TxOnPort(anchor)); got != chunks {
		t.Errorf("anchor received %d results, want %d", got, chunks)
	}
	for w := 0; w < ps.Workers; w++ {
		if len(n.Host(w).Received) != 0 {
			t.Errorf("worker %d received %d packets — egress pinning violated", w, len(n.Host(w).Received))
		}
	}
	// The aggregated values on the anchor are correct.
	got := make(map[int]uint32)
	var d packet.Decoded
	for _, p := range n.Host(anchor).Received {
		if err := d.DecodePacket(p); err != nil {
			t.Fatal(err)
		}
		for i, v := range d.ML.Values {
			got[int(d.ML.Base)+i] = v
		}
	}
	if len(got) != ps.ModelSize {
		t.Fatalf("anchor holds %d of %d weights", len(got), ps.ModelSize)
	}
	for idx, v := range got {
		if want := workload.MLExpectedSum(13, ps.Workers, idx); v != want {
			t.Errorf("weight %d = %d, want %d", idx, v, want)
		}
	}
	// And the computation used only the egress stages: ingress state
	// untouched (registers all zero).
	for pl := 0; pl < cfg.Pipelines; pl++ {
		for s := 0; s < cfg.Pipe.Stages; s++ {
			if sw.Ingress(pl).Stage(s).Regs.Peek(0) != 0 {
				t.Errorf("ingress pipeline %d stage %d holds state", pl, s)
			}
		}
	}
}

func TestParamServerRMTEgressRejectsWidePackets(t *testing.T) {
	// 6 stages → 5 usable; egress cannot recirculate, so width 16 is a
	// hard build error (unlike the ingress variant, which recirculates).
	ps := PSConfig{Workers: 2, ModelSize: 16, Width: 16}
	if _, err := NewParamServerRMTEgress(smallRMT(), ps); err == nil {
		t.Fatal("width beyond egress stage budget accepted")
	}
}

func TestReachableWorkersEgress(t *testing.T) {
	cfg := smallRMT() // 8 ports / 2 pipelines: anchor pipeline serves 4..7
	got := ReachableWorkersEgress(cfg, PSConfig{Workers: 6, ModelSize: 4, Width: 1})
	if len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Errorf("reachable = %v, want [4 5]", got)
	}
	// A 1-pipeline switch reaches everyone (degenerate case).
	cfg.Pipelines = 1
	all := ReachableWorkersEgress(cfg, PSConfig{Workers: 6, ModelSize: 4, Width: 1})
	if len(all) != 6 {
		t.Errorf("single pipeline reachable = %v", all)
	}
}
