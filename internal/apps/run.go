package apps

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/workload"
)

// RunResult captures one application run end-to-end.
type RunResult struct {
	// CCT is the coflow completion time.
	CCT sim.Time
	// Delivered counts packets received by hosts.
	Delivered uint64
	// Injected counts packets hosts sent.
	Injected uint64
	// Errors from the network/switch during the run.
	Errors []error
	// Network gives access to per-host state for correctness checks.
	Network *netsim.Network
}

// runInjections drives a workload through a network and waits for the
// expected number of deliveries (registered on coflowID).
func runInjections(n *netsim.Network, injs []workload.Injection, coflowID uint32, expectDeliveries int) (*RunResult, error) {
	n.Tracker().Expect(coflowID, expectDeliveries)
	for _, inj := range injs {
		n.SendAt(inj.Src, inj.Pkt, inj.At)
	}
	n.Run()
	res := &RunResult{
		Delivered: n.Delivered(),
		Injected:  n.Injected(),
		Errors:    n.Errors(),
		Network:   n,
	}
	st := n.Tracker().Status(coflowID)
	if st == nil {
		return res, fmt.Errorf("apps: coflow %d never tracked", coflowID)
	}
	if !st.Done {
		return res, fmt.Errorf("apps: coflow %d incomplete: delivered %d of %d (errors: %v)",
			coflowID, st.DeliverPkts, expectDeliveries, n.Errors())
	}
	res.CCT = st.CCT()
	return res, nil
}

// DefaultNetHetero returns a default network config where the listed
// hosts' link speeds are overridden (heterogeneous NICs).
func DefaultNetHetero(hosts int, overrides map[int]float64) netsim.Config {
	cfg := netsim.DefaultConfig(hosts)
	cfg.PerHostGbps = make([]float64, hosts)
	for i := range cfg.PerHostGbps {
		cfg.PerHostGbps[i] = cfg.LinkGbps
	}
	for h, g := range overrides {
		if h >= 0 && h < hosts {
			cfg.PerHostGbps[h] = g
		}
	}
	return cfg
}

// GroupRun parameterizes a group-communication run.
type GroupRun struct {
	CoflowID uint32
	GroupID  uint32
	Source   int
	Chunks   int
	ChunkLen int
	// Members is the group size (for the delivery expectation).
	Members int
}

// RunGroupComm drives a chunk stream from the source through a
// group-communication switch and waits until every member received every
// chunk.
func RunGroupComm(sw netsim.SwitchModel, netCfg netsim.Config, gr GroupRun) (*RunResult, error) {
	injs, err := workload.Group(workload.GroupParams{
		CoflowID: gr.CoflowID, GroupID: gr.GroupID, Source: gr.Source,
		Chunks: gr.Chunks, ChunkLen: gr.ChunkLen, Gap: 100 * sim.Nanosecond,
	})
	if err != nil {
		return nil, err
	}
	n, err := netsim.New(netCfg, sw)
	if err != nil {
		return nil, err
	}
	return runInjections(n, injs, gr.CoflowID, gr.Chunks*gr.Members)
}

// RunParamServer drives one aggregation round through the given switch
// (RMT or ADCP) and verifies every worker received the correct aggregated
// model. The switch must have been built by NewParamServerADCP or
// NewParamServerRMT with the same PSConfig.
func RunParamServer(sw netsim.SwitchModel, netCfg netsim.Config, ps PSConfig, coflowID uint32, seed uint64) (*RunResult, error) {
	injs, err := workload.ML(workload.MLParams{
		CoflowID:        coflowID,
		Workers:         ps.Workers,
		ModelSize:       ps.ModelSize,
		ValuesPerPacket: ps.Width,
		Gap:             100 * sim.Nanosecond,
		Seed:            seed,
	})
	if err != nil {
		return nil, err
	}
	n, err := netsim.New(netCfg, sw)
	if err != nil {
		return nil, err
	}
	chunks := ps.ModelSize / ps.Width
	res, err := runInjections(n, injs, coflowID, chunks*ps.Workers)
	if err != nil {
		return res, err
	}
	// Correctness: every worker holds the full aggregated model.
	for w := 0; w < ps.Workers; w++ {
		got := make(map[int]uint32)
		var d packet.Decoded
		for _, p := range n.Host(w).Received {
			if err := d.DecodePacket(p); err != nil {
				return res, err
			}
			for i, v := range d.ML.Values {
				got[int(d.ML.Base)+i] = v
			}
		}
		if len(got) != ps.ModelSize {
			return res, fmt.Errorf("apps: worker %d received %d of %d weights", w, len(got), ps.ModelSize)
		}
		for idx, v := range got {
			want := workload.MLExpectedSum(seed, ps.Workers, idx)
			if v != want {
				return res, fmt.Errorf("apps: worker %d weight %d = %d, want %d", w, idx, v, want)
			}
		}
	}
	return res, nil
}
