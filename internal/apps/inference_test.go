package apps

import (
	"testing"
	"testing/quick"

	"repro/internal/packet"
	"repro/internal/pipeline"
)

// trafficTree is a small classifier: class 0 = small control traffic,
// class 1 = storage (dst port 4), class 2 = bulk.
func trafficTree() *TreeNode {
	return &TreeNode{
		Feature: 2, Threshold: 200, // wire length
		Left: &TreeNode{Class: 0},
		Right: &TreeNode{
			Feature: 1, Threshold: 4, // dst port
			Left: &TreeNode{
				Feature: 1, Threshold: 3,
				Left:  &TreeNode{Class: 2},
				Right: &TreeNode{Class: 1}, // dst port exactly 3
			},
			Right: &TreeNode{Class: 2},
		},
	}
}

func inferPkt(src, dst, payload int) *packet.Packet {
	p := packet.BuildRaw(packet.Header{SrcPort: uint16(src), DstPort: uint16(dst), CoflowID: 77}, payload)
	p.IngressPort = src
	return p
}

func TestCompileTreeValidation(t *testing.T) {
	if _, err := CompileTree(nil); err == nil {
		t.Error("nil tree accepted")
	}
	if _, err := CompileTree(&TreeNode{Feature: 9, Threshold: 1,
		Left: &TreeNode{Class: 0}, Right: &TreeNode{Class: 1}}); err == nil {
		t.Error("bad feature accepted")
	}
	if _, err := CompileTree(&TreeNode{Feature: 0, Threshold: 1, Left: &TreeNode{Class: 0}}); err == nil {
		t.Error("one-child node accepted")
	}
	if _, err := CompileTree(&TreeNode{Class: -1}); err == nil {
		t.Error("negative class accepted")
	}
	m, err := CompileTree(trafficTree())
	if err != nil {
		t.Fatal(err)
	}
	if m.Classes != 3 {
		t.Errorf("Classes = %d", m.Classes)
	}
}

func TestInferenceRMTMatchesDirectEvaluation(t *testing.T) {
	tree := trafficTree()
	sw, err := NewInferenceRMT(smallRMT(), tree)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Model.TCAMEntries == 0 {
		t.Error("no TCAM entries consumed — range expansion missing")
	}
	cases := []struct{ src, dst, payload int }{
		{0, 1, 0},    // small → class 0
		{1, 3, 500},  // big to port 3 → class 1
		{2, 5, 500},  // big to port 5 → class 2
		{3, 2, 500},  // big to port 2 → class 2
		{4, 3, 100},  // small (wire 120 < 200) → class 0
		{5, 3, 1000}, // class 1
	}
	counts := map[int]int{}
	for _, c := range cases {
		pkt := inferPkt(c.src, c.dst, c.payload)
		feats := []uint32{uint32(c.src), uint32(c.dst), uint32(pkt.WireLen())}
		want := tree.Evaluate(feats)
		out, err := sw.Process(pkt)
		if err != nil {
			t.Fatalf("case %+v: %v", c, err)
		}
		if len(out) != 1 {
			t.Fatalf("case %+v delivered %d", c, len(out))
		}
		counts[want]++
	}
	got := sw.ClassCounts(3)
	for cls := 0; cls < 3; cls++ {
		if int(got[cls]) != counts[cls] {
			t.Errorf("class %d count = %d, want %d", cls, got[cls], counts[cls])
		}
	}
}

// Property: the compiled MAT pipeline agrees with direct tree evaluation
// for any feature combination.
func TestInferenceAgreementProperty(t *testing.T) {
	tree := trafficTree()
	sw, err := NewInferenceRMT(smallRMT(), tree)
	if err != nil {
		t.Fatal(err)
	}
	// Classify via a raw pipeline run and inspect Scratch[3].
	classify := func(src, dst uint16, payload int) int {
		pkt := inferPkt(int(src)%8, int(dst), payload)
		// Run through a single ingress pipeline directly to read Scratch.
		pl := sw.Ingress(0)
		ctx, err := pl.Process(pkt, inferenceProgramForTest(t, sw))
		if err != nil {
			t.Fatal(err)
		}
		defer pl.Release(ctx)
		return int(ctx.Scratch[3])
	}
	f := func(src, dst uint16, payloadRaw uint16) bool {
		payload := int(payloadRaw) % 1400
		pkt := inferPkt(int(src)%8, int(dst), payload)
		want := tree.Evaluate([]uint32{uint32(src % 8), uint32(dst), uint32(pkt.WireLen())})
		return classify(src, dst, payload) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// inferenceProgramForTest re-derives the program (it is unexported state of
// the constructor; tests need the same stage functions).
func inferenceProgramForTest(t *testing.T, sw *InferenceRMT) *pipeline.Program {
	t.Helper()
	return inferenceProgram()
}

func TestInferenceADCP(t *testing.T) {
	sw, m, err := NewInferenceADCP(smallADCP(), trafficTree())
	if err != nil {
		t.Fatal(err)
	}
	if m.TCAMEntries == 0 {
		t.Error("no TCAM entries")
	}
	out, err := sw.Process(inferPkt(1, 3, 500))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("delivered %d", len(out))
	}
}

func TestInferenceNeedsStagesAndTCAM(t *testing.T) {
	cfg := smallRMT()
	pipe := cfg.Pipe
	pipe.Stages = 2
	cfg.Pipe = pipe
	if _, err := NewInferenceRMT(cfg, trafficTree()); err == nil {
		t.Error("too few stages accepted")
	}
	cfg2 := smallRMT()
	pipe2 := cfg2.Pipe
	pipe2.TCAMEntriesPerStage = 0
	cfg2.Pipe = pipe2
	if _, err := NewInferenceRMT(cfg2, trafficTree()); err == nil {
		t.Error("TCAM-less pipeline accepted")
	}
}

func BenchmarkInferenceClassify(b *testing.B) {
	sw, err := NewInferenceRMT(smallRMT(), trafficTree())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt := inferPkt(i%8, i%7, 100+i%1000)
		if _, err := sw.Process(pkt); err != nil {
			b.Fatal(err)
		}
	}
}
