package apps

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/pipeline"
	"repro/internal/rmt"
)

// This file implements the paper's §1 example of what RMT is GOOD at: a
// traffic-aware, flowlet-pinning load balancer (HULA-style) — a
// traditional networking function whose state is strictly per-flow.
// Per-flow work needs no coflow convergence, no arrays, and no global
// area, so it runs equally well on both architectures; the experiments use
// it as the control case against the coflow applications.

// LBConfig sizes the load balancer.
type LBConfig struct {
	// Uplinks are the candidate output ports.
	Uplinks []int
	// FlowTableCells is the flowlet-pinning register size.
	FlowTableCells int
}

// Validate checks the configuration.
func (c LBConfig) Validate() error {
	if len(c.Uplinks) < 2 {
		return fmt.Errorf("apps: load balancer needs ≥2 uplinks")
	}
	if c.FlowTableCells <= 0 {
		return fmt.Errorf("apps: flow table %d cells", c.FlowTableCells)
	}
	return nil
}

// lbProgram builds the two-stage program:
//
//	stage 0: flowlet pinning — CAS the flow's cell with (chosen path + 1);
//	         an existing pin wins (flow stickiness).
//	stage 1: per-uplink load accounting (wire bytes).
//
// The path choice for new flows is round-robin over uplinks via a counter
// cell, a stand-in for HULA's utilization-driven choice that keeps the
// program deterministic for tests.
func lbProgram(cfg LBConfig) *pipeline.Program {
	n := uint64(len(cfg.Uplinks))
	return &pipeline.Program{
		Name: "flowlet-lb",
		Funcs: []pipeline.StageFunc{
			func(st *pipeline.Stage, ctx *pipeline.Context) error {
				flow := mat.HashKey(uint64(ctx.Decoded.Base.CoflowID)<<32 | uint64(ctx.Decoded.Base.FlowID))
				cell := int(flow % uint64(cfg.FlowTableCells))
				// Next-path counter lives in the last cell; CAS pins.
				rr := st.Regs.Execute(mat.RegAdd, cfg.FlowTableCells, 1)
				candidate := (rr - 1) % n
				old, err := st.RegisterRMW(mat.RegCAS, cell, candidate+1)
				if err != nil {
					return err
				}
				pick := candidate
				if old != 0 {
					pick = old - 1 // existing pin wins
					// Undo the round-robin advance so unpinned flows
					// still spread evenly.
					st.Regs.Execute(mat.RegAdd, cfg.FlowTableCells, ^uint64(0))
				}
				ctx.Egress = cfg.Uplinks[pick]
				return nil
			},
			func(st *pipeline.Stage, ctx *pipeline.Context) error {
				// Per-uplink byte counters (cells 0..len-1).
				for i, up := range cfg.Uplinks {
					if ctx.Egress == up {
						if _, err := st.RegisterRMW(mat.RegAdd, i, uint64(ctx.Pkt.WireLen())); err != nil {
							return err
						}
						break
					}
				}
				return nil
			},
		},
	}
}

// FlowletLBRMT is the load balancer on an RMT switch: state in every
// ingress pipeline, which is FINE here — a flow always arrives on the same
// port, so its state never needs to move (the per-flow world RMT was
// designed for).
type FlowletLBRMT struct {
	*rmt.Switch
	cfg LBConfig
}

// NewFlowletLBRMT builds the RMT deployment.
func NewFlowletLBRMT(cfg rmt.Config, lb LBConfig) (*FlowletLBRMT, error) {
	if err := lb.Validate(); err != nil {
		return nil, err
	}
	if lb.FlowTableCells+1 > cfg.Pipe.RegisterCellsPerStage {
		return nil, fmt.Errorf("apps: flow table exceeds register cells")
	}
	sw, err := rmt.New(cfg, lbProgram(lb), nil)
	if err != nil {
		return nil, err
	}
	return &FlowletLBRMT{Switch: sw, cfg: lb}, nil
}

// UplinkBytes returns the load counter of uplink i summed over pipelines.
func (f *FlowletLBRMT) UplinkBytes(i int) uint64 {
	var n uint64
	for pl := 0; pl < f.Config().Pipelines; pl++ {
		n += f.Ingress(pl).Stage(1).Regs.Peek(i)
	}
	return n
}

// FlowletLBADCP is the same program in the ADCP global area (partitioned
// by flow hash). It works identically — the point is that ADCP keeps
// RMT's strengths for per-flow protocols.
type FlowletLBADCP struct {
	*core.Switch
	cfg LBConfig
}

// NewFlowletLBADCP builds the ADCP deployment.
func NewFlowletLBADCP(cfg core.Config, lb LBConfig) (*FlowletLBADCP, error) {
	if err := lb.Validate(); err != nil {
		return nil, err
	}
	if lb.FlowTableCells+1 > cfg.Pipe.RegisterCellsPerStage {
		return nil, fmt.Errorf("apps: flow table exceeds register cells")
	}
	sw, err := core.New(cfg, core.Programs{Central: lbProgram(lb)})
	if err != nil {
		return nil, err
	}
	P := cfg.CentralPipelines
	sw.SetPartition(func(ctx *pipeline.Context) int {
		flow := mat.HashKey(uint64(ctx.Decoded.Base.CoflowID)<<32 | uint64(ctx.Decoded.Base.FlowID))
		return int(flow % uint64(P))
	})
	return &FlowletLBADCP{Switch: sw, cfg: lb}, nil
}

// UplinkBytes returns the load counter of uplink i summed over central
// pipelines.
func (f *FlowletLBADCP) UplinkBytes(i int) uint64 {
	var n uint64
	for p := 0; p < f.Config().CentralPipelines; p++ {
		n += f.Central(p).Stage(1).Regs.Peek(i)
	}
	return n
}
