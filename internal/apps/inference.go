package apps

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/pipeline"
	"repro/internal/rmt"
)

// In-network ML inference (the second half of Table 1's first row, and
// §1's "Do Switches Dream of Machine Learning?" class): a decision tree
// over per-packet features compiled into match-action tables using the
// standard encoding — each feature's thresholds become TCAM range codes
// (one stage per feature), and a final exact-match table maps the code
// tuple to a class.
//
// Inference is per-packet work, so like the flowlet load balancer it runs
// natively on BOTH architectures — a second control case. Its interesting
// cost is TCAM capacity: every tree threshold becomes a range expansion
// (mat.RangeToTernary).

// TreeNode is a binary decision-tree node: leaves carry Class (≥ 0) and
// interior nodes split on Feature < Threshold (left) vs ≥ (right).
type TreeNode struct {
	Feature   int // index into the feature vector
	Threshold uint32
	Left      *TreeNode
	Right     *TreeNode
	Class     int // valid when Left == Right == nil
}

// IsLeaf reports whether the node is a leaf.
func (n *TreeNode) IsLeaf() bool { return n.Left == nil && n.Right == nil }

// Evaluate walks the tree over a feature vector.
func (n *TreeNode) Evaluate(features []uint32) int {
	cur := n
	for !cur.IsLeaf() {
		if features[cur.Feature] < cur.Threshold {
			cur = cur.Left
		} else {
			cur = cur.Right
		}
	}
	return cur.Class
}

// NumFeatures is the fixed feature vector: source port, destination port,
// wire length — the classic traffic-classification triple.
const NumFeatures = 3

// ExtractFeatures lifts the feature vector from a packet context.
func ExtractFeatures(ctx *pipeline.Context) [NumFeatures]uint32 {
	return [NumFeatures]uint32{
		uint32(ctx.Decoded.Base.SrcPort),
		uint32(ctx.Decoded.Base.DstPort),
		uint32(ctx.Pkt.WireLen()),
	}
}

// InferenceModel is a tree compiled into per-feature range codes plus a
// code-tuple → class table.
type InferenceModel struct {
	tree *TreeNode
	// thresholds[f] are the sorted distinct split points of feature f.
	thresholds [NumFeatures][]uint32
	// TCAMEntries counts the ternary rules the range codes consumed.
	TCAMEntries int
	// Classes is the number of distinct leaf classes.
	Classes int
}

// CompileTree validates the tree and derives the code books.
func CompileTree(tree *TreeNode) (*InferenceModel, error) {
	if tree == nil {
		return nil, fmt.Errorf("apps: nil tree")
	}
	m := &InferenceModel{tree: tree}
	classes := map[int]bool{}
	var walk func(n *TreeNode, depth int) error
	walk = func(n *TreeNode, depth int) error {
		if depth > 32 {
			return fmt.Errorf("apps: tree deeper than 32 (cycle?)")
		}
		if n.IsLeaf() {
			if n.Class < 0 {
				return fmt.Errorf("apps: negative class %d", n.Class)
			}
			classes[n.Class] = true
			return nil
		}
		if n.Left == nil || n.Right == nil {
			return fmt.Errorf("apps: interior node with one child")
		}
		if n.Feature < 0 || n.Feature >= NumFeatures {
			return fmt.Errorf("apps: feature %d out of range", n.Feature)
		}
		m.thresholds[n.Feature] = append(m.thresholds[n.Feature], n.Threshold)
		if err := walk(n.Left, depth+1); err != nil {
			return err
		}
		return walk(n.Right, depth+1)
	}
	if err := walk(tree, 0); err != nil {
		return nil, err
	}
	for f := range m.thresholds {
		ts := m.thresholds[f]
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		// Dedup.
		out := ts[:0]
		for i, t := range ts {
			if i == 0 || t != ts[i-1] {
				out = append(out, t)
			}
		}
		m.thresholds[f] = out
	}
	m.Classes = len(classes)
	return m, nil
}

// codeRanges returns feature f's code intervals: code i covers
// [bounds[i], bounds[i+1]-1] with bounds = [0, t1, ..., tk, 2^32].
func (m *InferenceModel) codeRanges(f int) [][2]uint64 {
	ts := m.thresholds[f]
	var out [][2]uint64
	lo := uint64(0)
	for _, t := range ts {
		if uint64(t) > lo {
			out = append(out, [2]uint64{lo, uint64(t) - 1})
		} else {
			// Threshold 0: empty low interval, keep code alignment with a
			// degenerate range that can never match.
			out = append(out, [2]uint64{1, 0})
		}
		lo = uint64(t)
	}
	out = append(out, [2]uint64{lo, 0xFFFFFFFF})
	return out
}

// install populates stages [0, NumFeatures) TCAMs with the range codes and
// stage NumFeatures' exact table with the code-tuple → class mapping.
func (m *InferenceModel) install(stage func(i int) *pipeline.Stage) error {
	m.TCAMEntries = 0
	for f := 0; f < NumFeatures; f++ {
		st := stage(f)
		if st.TCAM == nil {
			return fmt.Errorf("apps: stage %d has no TCAM", f)
		}
		for code, r := range m.codeRanges(f) {
			if r[0] > r[1] {
				continue // degenerate
			}
			n, err := mat.InstallRange(st.TCAM, r[0], r[1], 32, 0, mat.Result{ActionID: code})
			if err != nil {
				return err
			}
			m.TCAMEntries += n
		}
	}
	// Enumerate code tuples; classify a representative point of each cell.
	final := stage(NumFeatures).Mem
	r0, r1, r2 := m.codeRanges(0), m.codeRanges(1), m.codeRanges(2)
	for c0, a := range r0 {
		for c1, b := range r1 {
			for c2, c := range r2 {
				if a[0] > a[1] || b[0] > b[1] || c[0] > c[1] {
					continue
				}
				class := m.tree.Evaluate([]uint32{uint32(a[0]), uint32(b[0]), uint32(c[0])})
				key := packCodes(c0, c1, c2)
				if err := final.Install(key, mat.Result{ActionID: class}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func packCodes(c0, c1, c2 int) uint64 {
	return uint64(c0) | uint64(c1)<<8 | uint64(c2)<<16
}

// inferenceProgram classifies every packet and counts per-class packets in
// the final stage's registers (cell = class).
func inferenceProgram() *pipeline.Program {
	funcs := make([]pipeline.StageFunc, NumFeatures+1)
	for f := 0; f < NumFeatures; f++ {
		f := f
		funcs[f] = func(st *pipeline.Stage, ctx *pipeline.Context) error {
			feat := ExtractFeatures(ctx)[f]
			r, ok := st.TCAM.Lookup(uint64(feat))
			if !ok {
				return fmt.Errorf("apps: feature %d value %d has no code", f, feat)
			}
			ctx.Scratch[f%4] = uint64(r.ActionID) // codes ride the PHV scratch
			return nil
		}
	}
	funcs[NumFeatures] = func(st *pipeline.Stage, ctx *pipeline.Context) error {
		key := packCodes(int(ctx.Scratch[0]), int(ctx.Scratch[1]), int(ctx.Scratch[2]))
		r, ok := st.Mem.Lookup(key)
		if !ok {
			return fmt.Errorf("apps: code tuple %#x unmapped", key)
		}
		if _, err := st.RegisterRMW(mat.RegAdd, r.ActionID, 1); err != nil {
			return err
		}
		ctx.Scratch[3] = uint64(r.ActionID) // class, for tests/routing
		return nil
	}
	return &pipeline.Program{Name: "inference", Funcs: funcs}
}

// InferenceRMT is the classifier deployed on RMT ingress (per-packet work:
// RMT's home turf). The model is installed in every ingress pipeline.
type InferenceRMT struct {
	*rmt.Switch
	Model *InferenceModel
}

// NewInferenceRMT builds the deployment.
func NewInferenceRMT(cfg rmt.Config, tree *TreeNode) (*InferenceRMT, error) {
	if cfg.Pipe.Stages < NumFeatures+1 {
		return nil, fmt.Errorf("apps: inference needs %d stages", NumFeatures+1)
	}
	m, err := CompileTree(tree)
	if err != nil {
		return nil, err
	}
	sw, err := rmt.New(cfg, inferenceProgram(), nil)
	if err != nil {
		return nil, err
	}
	for pl := 0; pl < cfg.Pipelines; pl++ {
		pl := pl
		if err := m.install(func(i int) *pipeline.Stage { return sw.Ingress(pl).Stage(i) }); err != nil {
			return nil, err
		}
	}
	return &InferenceRMT{Switch: sw, Model: m}, nil
}

// ClassCounts returns per-class packet counts summed over pipelines.
func (s *InferenceRMT) ClassCounts(classes int) []uint64 {
	out := make([]uint64, classes)
	for pl := 0; pl < s.Config().Pipelines; pl++ {
		regs := s.Ingress(pl).Stage(NumFeatures).Regs
		for c := 0; c < classes; c++ {
			out[c] += regs.Peek(c)
		}
	}
	return out
}

// NewInferenceADCP builds the same classifier in the ADCP global area
// (partitioned by nothing in particular — inference is stateless per
// packet, so any placement works).
func NewInferenceADCP(cfg core.Config, tree *TreeNode) (*core.Switch, *InferenceModel, error) {
	if cfg.Pipe.Stages < NumFeatures+1 {
		return nil, nil, fmt.Errorf("apps: inference needs %d stages", NumFeatures+1)
	}
	m, err := CompileTree(tree)
	if err != nil {
		return nil, nil, err
	}
	sw, err := core.New(cfg, core.Programs{Central: inferenceProgram()})
	if err != nil {
		return nil, nil, err
	}
	for p := 0; p < cfg.CentralPipelines; p++ {
		p := p
		if err := m.install(func(i int) *pipeline.Stage { return sw.Central(p).Stage(i) }); err != nil {
			return nil, nil, err
		}
	}
	return sw, m, nil
}
