package apps

import (
	"testing"

	"repro/internal/packet"
)

func lbPkt(flow uint32, src int, payload int) *packet.Packet {
	p := packet.BuildRaw(packet.Header{DstPort: 0, SrcPort: uint16(src), CoflowID: 100, FlowID: flow}, payload)
	p.IngressPort = src
	return p
}

func TestFlowletLBRMTStickiness(t *testing.T) {
	lb := LBConfig{Uplinks: []int{4, 5, 6, 7}, FlowTableCells: 512}
	sw, err := NewFlowletLBRMT(smallRMT(), lb)
	if err != nil {
		t.Fatal(err)
	}
	// Each flow's packets must all take one uplink.
	pinned := map[uint32]int{}
	for round := 0; round < 5; round++ {
		for flow := uint32(0); flow < 16; flow++ {
			out, err := sw.Process(lbPkt(flow, int(flow)%4, 100))
			if err != nil {
				t.Fatal(err)
			}
			if len(out) != 1 {
				t.Fatalf("flow %d delivered %d", flow, len(out))
			}
			up := out[0].EgressPort
			if prev, ok := pinned[flow]; ok && prev != up {
				t.Fatalf("flow %d moved from uplink %d to %d", flow, prev, up)
			}
			pinned[flow] = up
		}
	}
	// Flows spread across multiple uplinks.
	used := map[int]bool{}
	for _, up := range pinned {
		used[up] = true
	}
	if len(used) < 3 {
		t.Errorf("flows used only %d uplinks: %v", len(used), pinned)
	}
	// Load accounting: total bytes across uplinks = packets × wirelen.
	var total uint64
	for i := range lb.Uplinks {
		total += sw.UplinkBytes(i)
	}
	if total != uint64(5*16*120) {
		t.Errorf("uplink bytes = %d, want %d", total, 5*16*120)
	}
}

func TestFlowletLBADCPMatchesRMTBehavior(t *testing.T) {
	lb := LBConfig{Uplinks: []int{4, 5}, FlowTableCells: 256}
	sw, err := NewFlowletLBADCP(smallADCP(), lb)
	if err != nil {
		t.Fatal(err)
	}
	pinned := map[uint32]int{}
	for round := 0; round < 3; round++ {
		for flow := uint32(0); flow < 12; flow++ {
			out, err := sw.Process(lbPkt(flow, int(flow)%8, 50))
			if err != nil {
				t.Fatal(err)
			}
			if len(out) != 1 {
				t.Fatalf("delivered %d", len(out))
			}
			up := out[0].EgressPort
			if prev, ok := pinned[flow]; ok && prev != up {
				t.Fatalf("flow %d moved uplinks", flow)
			}
			pinned[flow] = up
		}
	}
	used := map[int]bool{}
	for _, up := range pinned {
		used[up] = true
	}
	if len(used) != 2 {
		t.Errorf("uplinks used: %v", used)
	}
	var total uint64
	for i := range lb.Uplinks {
		total += sw.UplinkBytes(i)
	}
	if total == 0 {
		t.Error("no load accounted")
	}
}

func TestFlowletLBValidation(t *testing.T) {
	if _, err := NewFlowletLBRMT(smallRMT(), LBConfig{Uplinks: []int{1}}); err == nil {
		t.Error("single uplink accepted")
	}
	if _, err := NewFlowletLBRMT(smallRMT(), LBConfig{Uplinks: []int{1, 2}, FlowTableCells: 1 << 20}); err == nil {
		t.Error("oversized flow table accepted")
	}
	if _, err := NewFlowletLBADCP(smallADCP(), LBConfig{Uplinks: []int{1, 2}}); err == nil {
		t.Error("zero flow table accepted")
	}
}

func TestFlowletLBNoRecirculationNeeded(t *testing.T) {
	// The control case: per-flow work costs RMT nothing — zero
	// recirculation, unlike the coflow apps.
	lb := LBConfig{Uplinks: []int{4, 5}, FlowTableCells: 64}
	sw, err := NewFlowletLBRMT(smallRMT(), lb)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := sw.Process(lbPkt(uint32(i%8), i%8, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if sw.RecirculationTraversals() != 0 {
		t.Errorf("per-flow app recirculated %d times", sw.RecirculationTraversals())
	}
	if sw.IngressOverheadFraction() != 0 {
		t.Errorf("overhead = %v", sw.IngressOverheadFraction())
	}
}
