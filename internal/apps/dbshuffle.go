package apps

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/packet"
	"repro/internal/pipeline"
	"repro/internal/rmt"
)

// DBConfig sizes the filter-aggregate-reshuffle pipeline (Table 1, database
// analytics row): sources scan and filter locally, the switch aggregates
// group-by partials per key, and aggregated partitions are reshuffled to
// destination hosts.
type DBConfig struct {
	// KeySpace bounds the group-by keys: [0, KeySpace).
	KeySpace uint32
	// DestHosts receive the aggregated partitions; key k goes to
	// DestHosts[k % len(DestHosts)].
	DestHosts []int
	// TuplesPerPacket is the source batch width.
	TuplesPerPacket int
}

// Validate checks the configuration.
func (c DBConfig) Validate() error {
	if c.KeySpace == 0 || len(c.DestHosts) == 0 || c.TuplesPerPacket <= 0 {
		return fmt.Errorf("apps: bad DB config %+v", c)
	}
	return nil
}

func (c DBConfig) destOf(key uint32) int {
	return c.DestHosts[int(key)%len(c.DestHosts)]
}

// FlushPacket builds the coordinator's control packet that makes partition
// state flush its aggregates (sent once per partition after all data).
func FlushPacket(coflowID uint32, query uint16, partition int) *packet.Packet {
	p := packet.Build(packet.Header{
		Proto:    packet.ProtoDB,
		CoflowID: coflowID,
		FlowID:   uint32(partition),
	}, &packet.DBHeader{Query: query, Stage: 1})
	return p
}

// dbAggregate adds a batch of tuples into per-key count cells
// (cell = key / partitions, keys pre-partitioned by key % partitions).
func dbAggregate(st *pipeline.Stage, tuples []packet.DBTuple, partitions int) {
	for _, tp := range tuples {
		st.Regs.Execute(mat.RegAdd, int(tp.Key)/partitions, uint64(tp.Measure))
	}
}

// dbFlush scans the partition's cells and emits aggregated tuples to their
// destination hosts, batched per destination. It models the control-plane
// register sweep real deployments perform at query end.
func dbFlush(st *pipeline.Stage, ctx *pipeline.Context, cfg DBConfig, partition, partitions int) {
	perDest := make(map[int][]packet.DBTuple)
	maxCell := int(cfg.KeySpace) / partitions
	for cell := 0; cell <= maxCell; cell++ {
		key := uint32(cell*partitions + partition)
		if key >= cfg.KeySpace {
			continue
		}
		count := st.Regs.Peek(cell)
		if count == 0 {
			continue
		}
		d := cfg.destOf(key)
		perDest[d] = append(perDest[d], packet.DBTuple{Key: key, Measure: uint32(count)})
	}
	dests := make([]int, 0, len(perDest))
	for d := range perDest {
		dests = append(dests, d)
	}
	sort.Ints(dests) // map order would make the emission order nondeterministic
	for _, dest := range dests {
		tuples := perDest[dest]
		for len(tuples) > 0 {
			n := cfg.TuplesPerPacket
			if n > len(tuples) {
				n = len(tuples)
			}
			res := packet.Build(packet.Header{
				Proto:    packet.ProtoDB,
				CoflowID: ctx.Decoded.Base.CoflowID,
				Flags:    packet.FlagFromSwch,
			}, &packet.DBHeader{Query: ctx.Decoded.DB.Query, Stage: 2, Tuples: tuples[:n]})
			ctx.Emit(res, dest)
			tuples = tuples[n:]
		}
	}
}

// NewDBShuffleADCP builds the ADCP deployment: TM1 partitions tuples by
// key % CentralPipelines (sources batch partition-aligned via
// PartitionTuples), the central program aggregates a whole batch per
// traversal, and flush emits each partition's aggregates to any
// destination port.
func NewDBShuffleADCP(cfg core.Config, db DBConfig) (*core.Switch, error) {
	if err := db.Validate(); err != nil {
		return nil, err
	}
	P := cfg.CentralPipelines
	if int(db.KeySpace)/P+1 > cfg.Pipe.RegisterCellsPerStage {
		return nil, fmt.Errorf("apps: keyspace %d needs more register cells than %d", db.KeySpace, cfg.Pipe.RegisterCellsPerStage)
	}
	// Programs are shared across central pipelines; derive the partition
	// from the packet instead of a per-pipeline closure: data packets
	// carry partition-pure tuples (key % P is constant across a packet),
	// flush packets carry the partition in FlowID.
	central := &pipeline.Program{
		Name: "dbshuffle-central",
		Funcs: []pipeline.StageFunc{
			func(st *pipeline.Stage, ctx *pipeline.Context) error {
				if ctx.Decoded.Base.Proto != packet.ProtoDB {
					return nil
				}
				switch ctx.Decoded.DB.Stage {
				case 0:
					dbAggregate(st, ctx.Decoded.DB.Tuples, P)
					ctx.Verdict = pipeline.VerdictConsume
				case 1:
					dbFlush(st, ctx, db, int(ctx.Decoded.Base.FlowID), P)
					ctx.Verdict = pipeline.VerdictConsume
				}
				return nil
			},
		},
	}
	sw, err := core.New(cfg, core.Programs{Central: central})
	if err != nil {
		return nil, err
	}
	sw.SetPartition(func(ctx *pipeline.Context) int {
		d := &ctx.Decoded
		if d.Base.Proto == packet.ProtoDB {
			if d.DB.Stage == 1 {
				return int(d.Base.FlowID) % P
			}
			if len(d.DB.Tuples) > 0 {
				return int(d.DB.Tuples[0].Key) % P
			}
		}
		return int(d.Base.CoflowID) % P
	})
	return sw, nil
}

// NewDBShuffleRMT builds the restructured RMT deployment: all aggregation
// state lives in the last ingress pipeline (reached via loopback from the
// others), and each traversal aggregates at most Stages-1 tuples — wider
// batches recirculate. The flush sweep runs in that pipeline and the
// result emissions reach any port through the TM.
func NewDBShuffleRMT(cfg rmt.Config, db DBConfig) (*rmt.Switch, error) {
	if err := db.Validate(); err != nil {
		return nil, err
	}
	stages := cfg.Pipe.Stages
	usable := stages - 1
	if usable < 1 {
		return nil, fmt.Errorf("apps: no usable stages")
	}
	if int(db.KeySpace)+1 > cfg.Pipe.RegisterCellsPerStage {
		return nil, fmt.Errorf("apps: keyspace %d exceeds register cells", db.KeySpace)
	}
	ppp := cfg.Ports / cfg.Pipelines
	loopback := cfg.Ports - 1
	aggPipe := loopback / ppp

	funcs := make([]pipeline.StageFunc, stages)
	funcs[0] = func(st *pipeline.Stage, ctx *pipeline.Context) error {
		if ctx.Decoded.Base.Proto != packet.ProtoDB {
			return nil
		}
		if ctx.Pkt.IngressPort/ppp != aggPipe {
			ctx.Egress = loopback
			ctx.Scratch[1] = 1
			return nil
		}
		ctx.Scratch[1] = 0
		if ctx.Decoded.DB.Stage == 1 {
			// RMT has no clean in-dataplane sweep: one key's counts are
			// spread across the stages that happened to aggregate it, so
			// the coordinator must read registers through the control
			// plane (DBAggregatesRMT) and reshuffle results itself — the
			// "application complexity cost" of §2. The flush packet is
			// just consumed.
			ctx.Verdict = pipeline.VerdictConsume
		}
		return nil
	}
	for s := 1; s < stages; s++ {
		s := s
		funcs[s] = func(st *pipeline.Stage, ctx *pipeline.Context) error {
			d := &ctx.Decoded
			if d.Base.Proto != packet.ProtoDB || d.DB.Stage != 0 || ctx.Scratch[1] == 1 {
				return nil
			}
			i := ctx.ElementOffset + s - 1
			if i < len(d.DB.Tuples) {
				tp := d.DB.Tuples[i]
				// Scalar: one stateful update per stage per traversal.
				if _, err := st.RegisterRMW(mat.RegAdd, int(tp.Key), uint64(tp.Measure)); err != nil {
					return err
				}
			}
			if s == stages-1 {
				if ctx.ElementOffset+usable < len(d.DB.Tuples) {
					ctx.ElementOffset += usable
					ctx.Verdict = pipeline.VerdictRecirculate
				} else {
					ctx.Verdict = pipeline.VerdictConsume
				}
			}
			return nil
		}
	}
	sw, err := rmt.New(cfg, &pipeline.Program{Name: "dbshuffle-rmt", Funcs: funcs}, nil)
	if err != nil {
		return nil, err
	}
	if err := sw.MarkRecirculationPort(loopback); err != nil {
		return nil, err
	}
	return sw, nil
}

// DBAggregatesRMT reads the aggregated group-by counts out of the RMT
// aggregation pipeline via the control plane: a key's total is the sum of
// its cell across ALL stages, because each packet aggregated tuple i at
// stage 1+(i mod usable) — the same key lands in different stages on
// different packets.
func DBAggregatesRMT(sw *rmt.Switch, db DBConfig) map[uint32]uint32 {
	cfg := sw.Config()
	aggPipe := (cfg.Ports - 1) / (cfg.Ports / cfg.Pipelines)
	out := make(map[uint32]uint32)
	pl := sw.Ingress(aggPipe)
	for key := uint32(0); key < db.KeySpace; key++ {
		var total uint64
		for s := 1; s < pl.NumStages(); s++ {
			total += pl.Stage(s).Regs.Peek(int(key))
		}
		if total > 0 {
			out[key] = uint32(total)
		}
	}
	return out
}

// DBAggregatesADCP reads the per-partition aggregates (for verification
// against the flushed result packets).
func DBAggregatesADCP(sw *core.Switch, db DBConfig) map[uint32]uint32 {
	P := sw.Config().CentralPipelines
	out := make(map[uint32]uint32)
	for p := 0; p < P; p++ {
		st := sw.Central(p).Stage(0)
		for cell := 0; cell <= int(db.KeySpace)/P; cell++ {
			key := uint32(cell*P + p)
			if key >= db.KeySpace {
				continue
			}
			if v := st.Regs.Peek(cell); v > 0 {
				out[key] = uint32(v)
			}
		}
	}
	return out
}

// PartitionTuples regroups tuples so each batch is partition-pure for a
// key%partitions placement, capped at maxBatch (the map-side partitioning
// a shuffle producer performs).
func PartitionTuples(tuples []packet.DBTuple, partitions, maxBatch int) [][]packet.DBTuple {
	byPart := make([][]packet.DBTuple, partitions)
	for _, tp := range tuples {
		i := int(tp.Key) % partitions
		byPart[i] = append(byPart[i], tp)
	}
	var out [][]packet.DBTuple
	for _, batch := range byPart {
		for len(batch) > maxBatch {
			out = append(out, batch[:maxBatch])
			batch = batch[maxBatch:]
		}
		if len(batch) > 0 {
			out = append(out, batch)
		}
	}
	return out
}
