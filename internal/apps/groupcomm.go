package apps

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/packet"
	"repro/internal/pipeline"
	"repro/internal/rmt"
)

// GroupConfig describes switch-managed communication groups (Table 1,
// group communications row): the switch replicates a source's chunk stream
// to every member, even when members have different NIC speeds (the
// per-member pacing happens in the TM/egress buffering).
type GroupConfig struct {
	// Members maps group id → member ports.
	Members map[uint32][]int
}

// Validate checks the configuration.
func (c GroupConfig) Validate() error {
	if len(c.Members) == 0 {
		return fmt.Errorf("apps: no groups")
	}
	for id, m := range c.Members {
		if len(m) == 0 {
			return fmt.Errorf("apps: group %d empty", id)
		}
	}
	return nil
}

// sortedGroups returns group ids in stable order (for deterministic table
// installs).
func (c GroupConfig) sortedGroups() []uint32 {
	ids := make([]uint32, 0, len(c.Members))
	for id := range c.Members {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// groupProgram builds the replication stage: look the group up in the
// stage table (hit proves membership is installed), then multicast to the
// members captured in cfg.
func groupProgram(cfg GroupConfig) *pipeline.Program {
	return &pipeline.Program{
		Name: "groupcomm",
		Funcs: []pipeline.StageFunc{
			func(st *pipeline.Stage, ctx *pipeline.Context) error {
				if ctx.Decoded.Base.Proto != packet.ProtoGroup {
					return nil
				}
				id := ctx.Decoded.Group.GroupID
				if _, ok := st.Mem.Lookup(uint64(id)); !ok {
					ctx.Verdict = pipeline.VerdictDrop
					return nil
				}
				st.Regs.Execute(mat.RegAdd, 0, 1) // replicated-chunk counter
				ctx.Multicast = append([]int(nil), cfg.Members[id]...)
				return nil
			},
		},
	}
}

// installGroups loads every group id into a stage's table.
func installGroups(mem *mat.StageMemory, cfg GroupConfig) error {
	for _, id := range cfg.sortedGroups() {
		if err := mem.Install(uint64(id), mat.Result{ActionID: 1}); err != nil {
			return err
		}
	}
	return nil
}

// NewGroupCommADCP builds the ADCP deployment: replication happens in the
// global area, so member sets may span any egress ports; TM2's shared
// buffer absorbs the fan-out toward slow members.
func NewGroupCommADCP(cfg core.Config, gc GroupConfig) (*core.Switch, error) {
	if err := gc.Validate(); err != nil {
		return nil, err
	}
	sw, err := core.New(cfg, core.Programs{Central: groupProgram(gc)})
	if err != nil {
		return nil, err
	}
	P := cfg.CentralPipelines
	sw.SetPartition(func(ctx *pipeline.Context) int {
		if ctx.Decoded.Base.Proto == packet.ProtoGroup {
			return int(ctx.Decoded.Group.GroupID) % P
		}
		return int(ctx.Decoded.Base.CoflowID) % P
	})
	for p := 0; p < P; p++ {
		if err := installGroups(sw.Central(p).Stage(0).Mem, gc); err != nil {
			return nil, err
		}
	}
	return sw, nil
}

// NewGroupCommRMT builds the RMT deployment: replication at ingress, group
// table installed in every ingress pipeline (sources may connect
// anywhere).
func NewGroupCommRMT(cfg rmt.Config, gc GroupConfig) (*rmt.Switch, error) {
	if err := gc.Validate(); err != nil {
		return nil, err
	}
	sw, err := rmt.New(cfg, groupProgram(gc), nil)
	if err != nil {
		return nil, err
	}
	for pl := 0; pl < cfg.Pipelines; pl++ {
		if err := installGroups(sw.Ingress(pl).Stage(0).Mem, gc); err != nil {
			return nil, err
		}
	}
	return sw, nil
}
