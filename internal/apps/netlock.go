package apps

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/packet"
	"repro/internal/pipeline"
	"repro/internal/rmt"
)

// This file implements the coordination row of Table 1 (NetLock-style
// in-network lock management, cited in §1): clients acquire and release
// locks with single round trips to the switch, which arbitrates them in
// register state using compare-and-swap.
//
// Locks are the cleanest illustration of limitation ①: a lock must be
// visible to EVERY client port, so on RMT its cell can live in only one
// pipeline and clients attached elsewhere pay the recirculation toll on
// every operation. On ADCP the lock lives in the global partitioned area,
// equidistant from all ports.

// LockConfig sizes the lock table.
type LockConfig struct {
	// Locks is the number of lock cells (lock ids in [0, Locks)).
	Locks int
}

// Validate checks the configuration.
func (c LockConfig) Validate() error {
	if c.Locks <= 0 {
		return fmt.Errorf("apps: %d locks", c.Locks)
	}
	return nil
}

// lockStage arbitrates one request against the stage's register file.
// Cell layout: cell i holds the holder's client id + 1 (0 = free).
func lockStage(st *pipeline.Stage, ctx *pipeline.Context, cellOf func(lockID uint32) int) error {
	kvh := &ctx.Decoded.KV
	if len(kvh.Pairs) != 1 {
		return fmt.Errorf("apps: lock packets carry exactly one pair, got %d", len(kvh.Pairs))
	}
	lockID := kvh.Pairs[0].Key
	client := kvh.Pairs[0].Value
	cell := cellOf(lockID)
	switch kvh.Op {
	case packet.KVLock:
		old, err := st.RegisterRMW(mat.RegCAS, cell, uint64(client)+1)
		if err != nil {
			return err
		}
		switch {
		case old == 0: // acquired
			kvh.Op = packet.KVGrant
		case old == uint64(client)+1: // re-entrant: already the holder
			kvh.Op = packet.KVGrant
		default:
			kvh.Op = packet.KVDeny
			kvh.Pairs[0].Value = uint32(old - 1) // report the holder
		}
	case packet.KVUnlock:
		// Release only when held by the requester (read, compare, write —
		// the one-RMW constraint allows the write; the read piggybacks on
		// a second ALU of the stage).
		cur := st.Regs.Peek(cell)
		if cur == uint64(client)+1 {
			if _, err := st.RegisterRMW(mat.RegWrite, cell, 0); err != nil {
				return err
			}
			kvh.Op = packet.KVGrant
		} else {
			kvh.Op = packet.KVDeny
			if cur > 0 {
				kvh.Pairs[0].Value = uint32(cur - 1)
			}
		}
	default:
		return nil
	}
	ctx.Modified = true
	ctx.Egress = int(ctx.Decoded.Base.SrcPort) // reply to the client
	return nil
}

// isLockOp reports whether the packet is a lock request.
func isLockOp(d *packet.Decoded) bool {
	return d.Base.Proto == packet.ProtoKV &&
		(d.KV.Op == packet.KVLock || d.KV.Op == packet.KVUnlock)
}

// NewNetLockADCP builds the ADCP lock manager: locks hash-partition across
// the global area, so every client port is one TM crossing away from every
// lock.
func NewNetLockADCP(cfg core.Config, lc LockConfig) (*core.Switch, error) {
	if err := lc.Validate(); err != nil {
		return nil, err
	}
	P := cfg.CentralPipelines
	if lc.Locks/P+1 > cfg.Pipe.RegisterCellsPerStage {
		return nil, fmt.Errorf("apps: %d locks exceed register cells", lc.Locks)
	}
	central := &pipeline.Program{
		Name: "netlock-central",
		Funcs: []pipeline.StageFunc{
			func(st *pipeline.Stage, ctx *pipeline.Context) error {
				if !isLockOp(&ctx.Decoded) {
					return nil
				}
				return lockStage(st, ctx, func(id uint32) int { return int(id) / P })
			},
		},
	}
	sw, err := core.New(cfg, core.Programs{Central: central})
	if err != nil {
		return nil, err
	}
	sw.SetPartition(func(ctx *pipeline.Context) int {
		if isLockOp(&ctx.Decoded) && len(ctx.Decoded.KV.Pairs) > 0 {
			return int(ctx.Decoded.KV.Pairs[0].Key) % P
		}
		return int(ctx.Decoded.Base.CoflowID) % P
	})
	return sw, nil
}

// NewNetLockRMT builds the RMT lock manager: ALL lock state lives in the
// last ingress pipeline (a lock cannot be replicated — it is mutable), so
// requests from clients on other pipelines loop through the recirculation
// port on every operation.
func NewNetLockRMT(cfg rmt.Config, lc LockConfig) (*rmt.Switch, error) {
	if err := lc.Validate(); err != nil {
		return nil, err
	}
	if lc.Locks > cfg.Pipe.RegisterCellsPerStage {
		return nil, fmt.Errorf("apps: %d locks exceed register cells", lc.Locks)
	}
	ppp := cfg.Ports / cfg.Pipelines
	loopback := cfg.Ports - 1
	lockPipe := loopback / ppp
	ingress := &pipeline.Program{
		Name: "netlock-rmt",
		Funcs: []pipeline.StageFunc{
			func(st *pipeline.Stage, ctx *pipeline.Context) error {
				if !isLockOp(&ctx.Decoded) {
					return nil
				}
				if ctx.Pkt.IngressPort/ppp != lockPipe {
					ctx.Egress = loopback // pay the toll
					return nil
				}
				return lockStage(st, ctx, func(id uint32) int { return int(id) })
			},
		},
	}
	sw, err := rmt.New(cfg, ingress, nil)
	if err != nil {
		return nil, err
	}
	if err := sw.MarkRecirculationPort(loopback); err != nil {
		return nil, err
	}
	return sw, nil
}

// LockRequest builds an acquire/release packet.
func LockRequest(op packet.KVOp, lockID, client uint32, srcPort int) *packet.Packet {
	p := packet.Build(packet.Header{
		Proto:    packet.ProtoKV,
		SrcPort:  uint16(srcPort),
		CoflowID: 0x10c0, // constant tag; tracker-friendly
	}, &packet.KVHeader{Op: op, Pairs: []packet.KVPair{{Key: lockID, Value: client}}})
	p.IngressPort = srcPort
	return p
}
