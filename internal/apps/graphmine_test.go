package apps

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
)

func graphEdges() []packet.Edge {
	// A small known graph.
	return []packet.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3},
		{Src: 3, Dst: 4}, {Src: 4, Dst: 0}, {Src: 0, Dst: 2},
	}
}

func candidatePkt(src int, edges []packet.Edge) *packet.Packet {
	p := packet.Build(packet.Header{Proto: packet.ProtoGraph, SrcPort: uint16(src), CoflowID: 13},
		&packet.GraphHeader{Round: 1, Edges: edges})
	p.IngressPort = src
	return p
}

func TestGraphMineADCPFiltersAndRoutes(t *testing.T) {
	gc := GraphConfig{Hosts: 8, EdgesPerPacket: 8}
	sw, err := NewGraphMineADCP(smallADCP(), gc)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range graphEdges() {
		if err := sw.InstallEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	if sw.SRAMUsed() != 6 {
		t.Errorf("SRAM = %d, want 6 (one entry per edge)", sw.SRAMUsed())
	}
	// Candidates: two real edges sharing partition (src 0), two fake.
	P := sw.Config().CentralPipelines
	batches := PartitionEdges([]packet.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, // real
		{Src: 0, Dst: 3}, {Src: 4, Dst: 2}, // fake
	}, P, 8)
	var delivered []*packet.Packet
	for _, b := range batches {
		outs, err := sw.Process(candidatePkt(1, b))
		if err != nil {
			t.Fatal(err)
		}
		delivered = append(delivered, outs...)
	}
	// Survivors: (0,1) and (0,2), owner = 0.
	if sw.Matched() != 2 {
		t.Errorf("Matched = %d, want 2", sw.Matched())
	}
	n := 0
	var d packet.Decoded
	for _, o := range delivered {
		if err := d.DecodePacket(o); err != nil {
			t.Fatal(err)
		}
		for _, e := range d.Graph.Edges {
			if o.EgressPort != int(e.Src)%8 {
				t.Errorf("edge %v delivered to %d", e, o.EgressPort)
			}
			n++
		}
	}
	if n != 2 {
		t.Errorf("survivors delivered = %d, want 2", n)
	}
}

func TestGraphMineRMTReplicationSRAM(t *testing.T) {
	gc := GraphConfig{Hosts: 8, EdgesPerPacket: 8}
	sw, err := NewGraphMineRMT(smallRMT(), gc)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range graphEdges() {
		if err := sw.InstallEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	// 6 edges × 8 copies × 2 pipelines.
	if sw.SRAMUsed() != 96 {
		t.Errorf("SRAM = %d, want 96", sw.SRAMUsed())
	}
	outs, err := sw.Process(candidatePkt(0, []packet.Edge{{Src: 0, Dst: 1}, {Src: 9, Dst: 9}}))
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 {
		t.Fatalf("delivered %d", len(outs))
	}
	var d packet.Decoded
	d.DecodePacket(outs[0])
	if len(d.Graph.Edges) != 1 || d.Graph.Edges[0] != (packet.Edge{Src: 0, Dst: 1}) {
		t.Errorf("survivors = %+v", d.Graph.Edges)
	}
}

func TestGraphMineValidation(t *testing.T) {
	if _, err := NewGraphMineADCP(smallADCP(), GraphConfig{}); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := NewGraphMineRMT(smallRMT(), GraphConfig{Hosts: 4, EdgesPerPacket: 99}); err == nil {
		t.Error("replication beyond MAUs accepted")
	}
}

func TestPartitionEdges(t *testing.T) {
	var edges []packet.Edge
	for i := 0; i < 40; i++ {
		edges = append(edges, packet.Edge{Src: uint32(i), Dst: uint32(i + 1)})
	}
	batches := PartitionEdges(edges, 4, 8)
	n := 0
	for _, b := range batches {
		if len(b) == 0 || len(b) > 8 {
			t.Fatalf("batch size %d", len(b))
		}
		p := b[0].Src % 4
		for _, e := range b {
			if e.Src%4 != p {
				t.Fatal("mixed partitions")
			}
			n++
		}
	}
	if n != 40 {
		t.Errorf("covered %d", n)
	}
}

func TestGroupCommADCPFanOut(t *testing.T) {
	gc := GroupConfig{Members: map[uint32][]int{7: {1, 3, 6}}}
	sw, err := NewGroupCommADCP(smallADCP(), gc)
	if err != nil {
		t.Fatal(err)
	}
	chunk := packet.Build(packet.Header{Proto: packet.ProtoGroup, SrcPort: 0, CoflowID: 14},
		&packet.GroupHeader{GroupID: 7, Chunk: 0, Total: 1, Payload: []byte("data")})
	chunk.IngressPort = 0
	outs, err := sw.Process(chunk)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 3 {
		t.Fatalf("fan-out = %d, want 3", len(outs))
	}
	ports := map[int]bool{}
	for _, o := range outs {
		ports[o.EgressPort] = true
	}
	for _, want := range []int{1, 3, 6} {
		if !ports[want] {
			t.Errorf("member port %d missing", want)
		}
	}
	// Unknown group drops.
	bad := packet.Build(packet.Header{Proto: packet.ProtoGroup, CoflowID: 14},
		&packet.GroupHeader{GroupID: 99, Payload: []byte("x")})
	bad.IngressPort = 0
	outs, err = sw.Process(bad)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 0 {
		t.Error("unknown group delivered")
	}
}

func TestGroupCommRMTFanOut(t *testing.T) {
	gc := GroupConfig{Members: map[uint32][]int{3: {0, 2, 5, 7}}}
	sw, err := NewGroupCommRMT(smallRMT(), gc)
	if err != nil {
		t.Fatal(err)
	}
	chunk := packet.Build(packet.Header{Proto: packet.ProtoGroup, SrcPort: 1, CoflowID: 15},
		&packet.GroupHeader{GroupID: 3, Chunk: 0, Total: 1, Payload: []byte("y")})
	chunk.IngressPort = 1
	outs, err := sw.Process(chunk)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 4 {
		t.Fatalf("fan-out = %d, want 4", len(outs))
	}
}

func TestGroupCommValidation(t *testing.T) {
	if _, err := NewGroupCommADCP(smallADCP(), GroupConfig{}); err == nil {
		t.Error("no groups accepted")
	}
	if _, err := NewGroupCommRMT(smallRMT(), GroupConfig{Members: map[uint32][]int{1: {}}}); err == nil {
		t.Error("empty group accepted")
	}
}

func TestGroupCommHeterogeneousNICs(t *testing.T) {
	// Table 1's group row: the switch drives the transfer "even if some
	// of the servers have different NIC capabilities" — the slow member
	// finishes later but completely.
	gc := GroupConfig{Members: map[uint32][]int{1: {2, 3}}}
	sw, err := NewGroupCommADCP(smallADCP(), gc)
	if err != nil {
		t.Fatal(err)
	}
	netCfg := DefaultNetHetero(8, map[int]float64{3: 1}) // host 3 at 1 Gbps
	res, err := RunGroupComm(sw, netCfg, GroupRun{CoflowID: 14, GroupID: 1, Source: 0, Chunks: 10, ChunkLen: 1000, Members: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Network.Host(2).Received) != 10 || len(res.Network.Host(3).Received) != 10 {
		t.Fatalf("members received %d/%d, want 10/10",
			len(res.Network.Host(2).Received), len(res.Network.Host(3).Received))
	}
	// The slow member's RX completes last; CCT reflects it.
	if res.CCT <= 0 {
		t.Errorf("CCT = %v", res.CCT)
	}
	_ = sim.Time(0)
}
