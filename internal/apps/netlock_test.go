package apps

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
)

func lockOp(t *testing.T, sw interface {
	Process(*packet.Packet) ([]*packet.Packet, error)
}, op packet.KVOp, lockID, client uint32, srcPort int) packet.KVOp {
	t.Helper()
	out, err := sw.Process(LockRequest(op, lockID, client, srcPort))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("lock op delivered %d replies", len(out))
	}
	if out[0].EgressPort != srcPort {
		t.Fatalf("reply to port %d, want %d", out[0].EgressPort, srcPort)
	}
	var d packet.Decoded
	if err := d.DecodePacket(out[0]); err != nil {
		t.Fatal(err)
	}
	return d.KV.Op
}

func TestNetLockADCPSemantics(t *testing.T) {
	sw, err := NewNetLockADCP(smallADCP(), LockConfig{Locks: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Client 1 acquires lock 7.
	if got := lockOp(t, sw, packet.KVLock, 7, 1, 1); got != packet.KVGrant {
		t.Fatalf("first acquire = %v", got)
	}
	// Client 2 is denied; reply names the holder.
	out, err := sw.Process(LockRequest(packet.KVLock, 7, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	var d packet.Decoded
	d.DecodePacket(out[0])
	if d.KV.Op != packet.KVDeny || d.KV.Pairs[0].Value != 1 {
		t.Fatalf("contended acquire = %+v", d.KV)
	}
	// Re-entrant acquire by the holder is granted.
	if got := lockOp(t, sw, packet.KVLock, 7, 1, 1); got != packet.KVGrant {
		t.Fatalf("re-entrant acquire = %v", got)
	}
	// Wrong client cannot release.
	if got := lockOp(t, sw, packet.KVUnlock, 7, 2, 2); got != packet.KVDeny {
		t.Fatalf("foreign release = %v", got)
	}
	// Holder releases; then client 2 acquires.
	if got := lockOp(t, sw, packet.KVUnlock, 7, 1, 1); got != packet.KVGrant {
		t.Fatalf("release = %v", got)
	}
	if got := lockOp(t, sw, packet.KVLock, 7, 2, 2); got != packet.KVGrant {
		t.Fatalf("acquire after release = %v", got)
	}
	// Independent lock unaffected.
	if got := lockOp(t, sw, packet.KVLock, 8, 3, 3); got != packet.KVGrant {
		t.Fatalf("independent lock = %v", got)
	}
	// Releasing a free lock is denied.
	if got := lockOp(t, sw, packet.KVUnlock, 20, 1, 1); got != packet.KVDeny {
		t.Fatalf("free release = %v", got)
	}
}

func TestNetLockRMTPaysRecirculationToll(t *testing.T) {
	cfg := smallRMT() // 8 ports / 2 pipelines; lock pipeline = 1, loopback 7
	sw, err := NewNetLockRMT(cfg, LockConfig{Locks: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Client on port 0 (pipeline 0): every op loops once.
	if got := lockOp(t, sw, packet.KVLock, 3, 1, 0); got != packet.KVGrant {
		t.Fatalf("acquire = %v", got)
	}
	if sw.RecirculationTraversals() != 1 {
		t.Errorf("recirc = %d, want 1", sw.RecirculationTraversals())
	}
	// Client on port 5 (pipeline 1): no toll.
	if got := lockOp(t, sw, packet.KVLock, 4, 2, 5); got != packet.KVGrant {
		t.Fatalf("local acquire = %v", got)
	}
	if sw.RecirculationTraversals() != 1 {
		t.Errorf("local op paid the toll: %d", sw.RecirculationTraversals())
	}
	// Semantics identical to ADCP: contention denied.
	out, err := sw.Process(LockRequest(packet.KVLock, 3, 9, 6))
	if err != nil {
		t.Fatal(err)
	}
	var d packet.Decoded
	d.DecodePacket(out[0])
	if d.KV.Op != packet.KVDeny || d.KV.Pairs[0].Value != 1 {
		t.Fatalf("contended = %+v", d.KV)
	}
}

func TestNetLockValidation(t *testing.T) {
	if _, err := NewNetLockADCP(smallADCP(), LockConfig{}); err == nil {
		t.Error("zero locks accepted")
	}
	if _, err := NewNetLockADCP(smallADCP(), LockConfig{Locks: 1 << 20}); err == nil {
		t.Error("lock table beyond registers accepted")
	}
	if _, err := NewNetLockRMT(smallRMT(), LockConfig{Locks: 1 << 20}); err == nil {
		t.Error("lock table beyond registers accepted (RMT)")
	}
}

func TestNetLockMutualExclusionSoak(t *testing.T) {
	// Many clients hammer a few locks; at all times each lock has at most
	// one holder, and grants/denies are consistent with a shadow model.
	sw, err := NewNetLockADCP(smallADCP(), LockConfig{Locks: 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(33)
	shadow := map[uint32]uint32{} // lock → holder+1
	for i := 0; i < 2000; i++ {
		lock := uint32(rng.Intn(8))
		client := uint32(rng.Intn(5)) + 1
		src := int(client) % 8
		var op packet.KVOp
		if rng.Intn(2) == 0 {
			op = packet.KVLock
		} else {
			op = packet.KVUnlock
		}
		got := lockOp(t, sw, op, lock, client, src)
		switch op {
		case packet.KVLock:
			if shadow[lock] == 0 || shadow[lock] == client+1 {
				if got != packet.KVGrant {
					t.Fatalf("op %d: acquire should grant", i)
				}
				shadow[lock] = client + 1
			} else if got != packet.KVDeny {
				t.Fatalf("op %d: acquire should deny (held by %d)", i, shadow[lock]-1)
			}
		case packet.KVUnlock:
			if shadow[lock] == client+1 {
				if got != packet.KVGrant {
					t.Fatalf("op %d: release should grant", i)
				}
				shadow[lock] = 0
			} else if got != packet.KVDeny {
				t.Fatalf("op %d: release should deny", i)
			}
		}
	}
}

func BenchmarkNetLockAcquireRelease(b *testing.B) {
	sw, err := NewNetLockADCP(smallADCP(), LockConfig{Locks: 64})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lock := uint32(i % 64)
		if _, err := sw.Process(LockRequest(packet.KVLock, lock, 1, 1)); err != nil {
			b.Fatal(err)
		}
		if _, err := sw.Process(LockRequest(packet.KVUnlock, lock, 1, 1)); err != nil {
			b.Fatal(err)
		}
	}
}
