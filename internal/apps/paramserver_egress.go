package apps

import (
	"fmt"

	"repro/internal/mat"
	"repro/internal/packet"
	"repro/internal/pipeline"
	"repro/internal/rmt"
)

// NewParamServerRMTEgress builds the OTHER RMT restructuring of Figure 2:
// instead of steering flows into one ingress pipeline via loopback, all
// worker packets are TM-forwarded to one EGRESS pipeline and aggregated
// there. This avoids recirculation entirely — but:
//
//   - only the egress stages run the computation ("delaying computations
//     until the egress pipeline would forego using the ingress pipeline
//     stages, reducing the total stages involved ... by half"), so fewer
//     weights fit per pass... and egress pipelines cannot recirculate, so
//     packets wider than the egress stage budget are REJECTED outright;
//   - the aggregated result can only exit on the aggregation pipeline's
//     own ports ("the resulting flow can only be output to ports connected
//     to that specific pipeline"). Workers attached elsewhere never
//     receive it from the switch — the caller must bounce it off a host.
//
// The result is emitted to the anchor port only; ReachableWorkers reports
// which workers the switch can serve directly.
func NewParamServerRMTEgress(cfg rmt.Config, ps PSConfig) (*rmt.Switch, error) {
	if err := ps.Validate(cfg.Ports); err != nil {
		return nil, err
	}
	stages := cfg.Pipe.Stages
	usable := stages - 1
	if ps.Width > usable {
		return nil, fmt.Errorf("apps: width %d exceeds %d egress stages and egress cannot recirculate (Figure 2)", ps.Width, usable)
	}
	chunks := ps.ModelSize / ps.Width
	if chunks > cfg.Pipe.RegisterCellsPerStage {
		return nil, fmt.Errorf("apps: %d chunks exceed %d register cells", chunks, cfg.Pipe.RegisterCellsPerStage)
	}
	// Anchor: the last port; its egress pipeline hosts the aggregation.
	anchor := cfg.Ports - 1

	// Ingress: steer every ML packet toward the anchor port (any ingress
	// pipeline can do this — the TM reaches every egress pipeline).
	ingress := &pipeline.Program{
		Name: "ps-egress-ingress",
		Funcs: []pipeline.StageFunc{
			func(st *pipeline.Stage, ctx *pipeline.Context) error {
				if ctx.Decoded.Base.Proto == packet.ProtoML {
					ctx.Egress = anchor
				}
				return nil
			},
		},
	}

	funcs := make([]pipeline.StageFunc, stages)
	funcs[0] = func(st *pipeline.Stage, ctx *pipeline.Context) error {
		if ctx.Decoded.Base.Proto != packet.ProtoML {
			return nil
		}
		chunk := int(ctx.Decoded.ML.Base) / ps.Width
		cnt, err := st.RegisterRMW(mat.RegAdd, chunk, 1)
		if err != nil {
			return err
		}
		ctx.Scratch[0] = cnt
		return nil
	}
	for s := 1; s < stages; s++ {
		s := s
		funcs[s] = func(st *pipeline.Stage, ctx *pipeline.Context) error {
			if ctx.Decoded.Base.Proto != packet.ProtoML {
				return nil
			}
			ml := &ctx.Decoded.ML
			i := s - 1
			if i < len(ml.Values) {
				chunk := int(ml.Base) / ps.Width
				sum, err := st.RegisterRMW(mat.RegAdd, chunk, uint64(ml.Values[i]))
				if err != nil {
					return err
				}
				ml.Values[i] = uint32(sum)
			}
			if s == stages-1 {
				if int(ctx.Scratch[0]) == ps.Workers {
					res := packet.Build(packet.Header{
						Proto:    packet.ProtoML,
						CoflowID: ctx.Decoded.Base.CoflowID,
						Flags:    packet.FlagFromSwch,
					}, &packet.MLHeader{Base: ml.Base, Values: ml.Values})
					// Figure 2: only THIS pipeline's ports are reachable
					// from egress. Emit to the anchor; the switch's
					// misroute guard would drop anything else anyway.
					ctx.Emit(res, anchor)
				}
				ctx.Verdict = pipeline.VerdictConsume
			}
			return nil
		}
	}
	egress := &pipeline.Program{Name: "ps-egress-agg", Funcs: funcs}
	return rmt.New(cfg, ingress, egress)
}

// ReachableWorkersEgress returns which of the workers can receive the
// egress-aggregated result directly from the switch: those on the anchor
// port's pipeline.
func ReachableWorkersEgress(cfg rmt.Config, ps PSConfig) []int {
	ppp := cfg.Ports / cfg.Pipelines
	aggPipe := (cfg.Ports - 1) / ppp
	var out []int
	for w := 0; w < ps.Workers; w++ {
		if w/ppp == aggPipe {
			out = append(out, w)
		}
	}
	return out
}
