package apps

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/packet"
	"repro/internal/pipeline"
	"repro/internal/rmt"
	"repro/internal/tm"
)

// KVConfig sizes an in-network key/value cache (NetCache-style, §1), with
// the multi-key batching of §3.2.
type KVConfig struct {
	// KeysPerPacket is the batch width clients use.
	KeysPerPacket int
	// CacheEntries is the number of (key, value) pairs to serve from the
	// switch.
	CacheEntries int
}

// Validate checks the configuration.
func (c KVConfig) Validate() error {
	if c.KeysPerPacket <= 0 || c.CacheEntries <= 0 {
		return fmt.Errorf("apps: bad KV config %+v", c)
	}
	return nil
}

// KVCacheADCP is an ADCP switch serving a partitioned multi-key cache.
type KVCacheADCP struct {
	*core.Switch
	cfg  KVConfig
	part *tm.HashPartitioner
}

// NewKVCacheADCP builds the switch: TM1 partitions request packets by the
// hash of their first key (clients batch partition-aligned, see
// PartitionKV), and the central program matches the whole batch against
// the partition's shared cache table in one traversal. The batch keys
// arrive through a PHV array container filled by the PARSER (§3.2's
// "array processing techniques in packet parsing"), not by program code.
func NewKVCacheADCP(cfg core.Config, kv KVConfig) (*KVCacheADCP, error) {
	if err := kv.Validate(); err != nil {
		return nil, err
	}
	layout := pipeline.StandardLayout(cfg.Pipe.PHVBudget)
	keysID, err := layout.AllocArray("kv_keys")
	if err != nil {
		return nil, fmt.Errorf("apps: KV cache needs an array container: %w", err)
	}
	part := tm.NewHashPartitioner(cfg.CentralPipelines)
	central := &pipeline.Program{
		Name:   "kvcache-central",
		Layout: layout,
		Funcs: []pipeline.StageFunc{
			func(st *pipeline.Stage, ctx *pipeline.Context) error {
				if ctx.Decoded.Base.Proto != packet.ProtoKV {
					return nil
				}
				kvh := &ctx.Decoded.KV
				// The parser lifted the batch into the PHV array; the
				// stage consumes it from there (capped at the array
				// width — wider batches would need another container).
				lifted := ctx.PHV.Array(keysID)
				keys := make([]uint64, len(kvh.Pairs))
				for i := range kvh.Pairs {
					if i < len(lifted) {
						keys[i] = uint64(lifted[i])
					} else {
						keys[i] = uint64(kvh.Pairs[i].Key)
					}
				}
				switch kvh.Op {
				case packet.KVGet:
					results := make([]mat.Result, len(keys))
					hits := make([]bool, len(keys))
					if _, err := st.Mem.LookupBatch(keys, results, hits); err != nil {
						return err
					}
					allHit := true
					var hitKeys, missKeys uint64
					for i := range kvh.Pairs {
						if hits[i] {
							kvh.Pairs[i].Value = uint32(results[i].Params[0])
							hitKeys++
						} else {
							allHit = false
							missKeys++
						}
					}
					st.Regs.Execute(mat.RegAdd, 0, hitKeys)  // per-key hit counter
					st.Regs.Execute(mat.RegAdd, 1, missKeys) // per-key miss counter
					if allHit {
						kvh.Op = packet.KVHit
					} else {
						kvh.Op = packet.KVMiss
					}
				case packet.KVPut:
					for _, p := range kvh.Pairs {
						if err := st.Mem.Install(uint64(p.Key), mat.Result{Params: [2]uint64{uint64(p.Value), 0}}); err != nil {
							return err
						}
					}
					kvh.Op = packet.KVHit
				}
				ctx.Modified = true
				ctx.Egress = int(ctx.Decoded.Base.SrcPort) // reply to client
				return nil
			},
		},
	}
	sw, err := core.New(cfg, core.Programs{Central: central})
	if err != nil {
		return nil, err
	}
	sw.SetPartition(func(ctx *pipeline.Context) int {
		if ctx.Decoded.Base.Proto == packet.ProtoKV && len(ctx.Decoded.KV.Pairs) > 0 {
			return part.Place(uint64(ctx.Decoded.KV.Pairs[0].Key))
		}
		return int(ctx.Decoded.Base.CoflowID) % cfg.CentralPipelines
	})
	return &KVCacheADCP{Switch: sw, cfg: kv, part: part}, nil
}

// Install loads a cache entry into its home partition. SRAM cost: one
// entry, once.
func (k *KVCacheADCP) Install(key, value uint32) error {
	cp := k.part.Place(uint64(key))
	return k.Central(cp).Stage(0).Mem.Install(uint64(key), mat.Result{Params: [2]uint64{uint64(value), 0}})
}

// PartitionOf returns the central pipeline that owns a key.
func (k *KVCacheADCP) PartitionOf(key uint32) int { return k.part.Place(uint64(key)) }

// SRAMUsed sums cache SRAM entries across the global area.
func (k *KVCacheADCP) SRAMUsed() int {
	n := 0
	for i := 0; i < k.Config().CentralPipelines; i++ {
		n += k.Central(i).Stage(0).Mem.SRAMUsed()
	}
	return n
}

// Hits returns the aggregate per-key hit counter.
func (k *KVCacheADCP) Hits() uint64 {
	var n uint64
	for i := 0; i < k.Config().CentralPipelines; i++ {
		n += k.Central(i).Stage(0).Regs.Peek(0)
	}
	return n
}

// Misses returns the aggregate per-key miss counter.
func (k *KVCacheADCP) Misses() uint64 {
	var n uint64
	for i := 0; i < k.Config().CentralPipelines; i++ {
		n += k.Central(i).Stage(0).Regs.Peek(1)
	}
	return n
}

// KVCacheRMT is the restructured RMT deployment: the cache lives in every
// ingress pipeline (clients connect anywhere), and each stage-0 memory is
// replicated KeysPerPacket-fold so a batch can match in one traversal —
// Figure 3's cost, paid in SRAM: entries × replication × pipelines.
type KVCacheRMT struct {
	*rmt.Switch
	cfg KVConfig
}

// NewKVCacheRMT builds the switch. The per-copy table capacity shrinks by
// the replication factor; an Install that no longer fits returns
// mat.ErrTableFull — the capacity loss the paper plots.
func NewKVCacheRMT(cfg rmt.Config, kv KVConfig) (*KVCacheRMT, error) {
	if err := kv.Validate(); err != nil {
		return nil, err
	}
	if kv.KeysPerPacket > cfg.Pipe.MAUsPerStage {
		return nil, fmt.Errorf("apps: %d keys/packet exceeds %d MAUs", kv.KeysPerPacket, cfg.Pipe.MAUsPerStage)
	}
	ingress := &pipeline.Program{
		Name: "kvcache-rmt",
		Funcs: []pipeline.StageFunc{
			func(st *pipeline.Stage, ctx *pipeline.Context) error {
				if ctx.Decoded.Base.Proto != packet.ProtoKV {
					return nil
				}
				kvh := &ctx.Decoded.KV
				switch kvh.Op {
				case packet.KVGet:
					keys := make([]uint64, len(kvh.Pairs))
					for i, p := range kvh.Pairs {
						keys[i] = uint64(p.Key)
					}
					results := make([]mat.Result, len(keys))
					hits := make([]bool, len(keys))
					if _, err := st.Mem.LookupBatch(keys, results, hits); err != nil {
						return err
					}
					allHit := true
					for i := range kvh.Pairs {
						if hits[i] {
							kvh.Pairs[i].Value = uint32(results[i].Params[0])
						} else {
							allHit = false
						}
					}
					if allHit {
						kvh.Op = packet.KVHit
					} else {
						kvh.Op = packet.KVMiss
					}
				case packet.KVPut:
					for _, p := range kvh.Pairs {
						if err := st.Mem.Install(uint64(p.Key), mat.Result{Params: [2]uint64{uint64(p.Value), 0}}); err != nil {
							return err
						}
					}
					kvh.Op = packet.KVHit
				}
				ctx.Modified = true
				ctx.Egress = int(ctx.Decoded.Base.SrcPort)
				return nil
			},
		},
	}
	sw, err := rmt.New(cfg, ingress, nil)
	if err != nil {
		return nil, err
	}
	for pl := 0; pl < cfg.Pipelines; pl++ {
		if err := sw.Ingress(pl).Stage(0).Mem.ConfigureReplication(kv.KeysPerPacket); err != nil {
			return nil, err
		}
	}
	return &KVCacheRMT{Switch: sw, cfg: kv}, nil
}

// Install loads a cache entry into EVERY ingress pipeline (clients may
// arrive on any of them), each of which holds KeysPerPacket replicated
// copies. SRAM cost: pipelines × replication entries.
func (k *KVCacheRMT) Install(key, value uint32) error {
	for pl := 0; pl < k.Config().Pipelines; pl++ {
		if err := k.Ingress(pl).Stage(0).Mem.Install(uint64(key), mat.Result{Params: [2]uint64{uint64(value), 0}}); err != nil {
			return err
		}
	}
	return nil
}

// SRAMUsed sums cache SRAM entries across all ingress pipelines.
func (k *KVCacheRMT) SRAMUsed() int {
	n := 0
	for pl := 0; pl < k.Config().Pipelines; pl++ {
		n += k.Ingress(pl).Stage(0).Mem.SRAMUsed()
	}
	return n
}

// EffectiveCapacity returns distinct cache entries one pipeline can hold.
func (k *KVCacheRMT) EffectiveCapacity() int {
	return k.Ingress(0).Stage(0).Mem.EffectiveCapacity()
}

// PartitionKV regroups a batch of pairs so each output batch contains only
// keys of one ADCP partition (what a partition-aware client library does).
// Batches are capped at maxBatch pairs.
func PartitionKV(pairs []packet.KVPair, partitions, maxBatch int) [][]packet.KVPair {
	part := tm.NewHashPartitioner(partitions)
	byPart := make([][]packet.KVPair, partitions)
	for _, p := range pairs {
		i := part.Place(uint64(p.Key))
		byPart[i] = append(byPart[i], p)
	}
	var out [][]packet.KVPair
	for _, batch := range byPart {
		for len(batch) > maxBatch {
			out = append(out, batch[:maxBatch])
			batch = batch[maxBatch:]
		}
		if len(batch) > 0 {
			out = append(out, batch)
		}
	}
	return out
}
