package apps

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/packet"
	"repro/internal/pipeline"
	"repro/internal/rmt"
)

// GraphConfig sizes the in-network graph pattern-mining filter (Table 1,
// GraphINC-style): the switch holds the graph's edge set; hosts send
// candidate edges each BSP superstep; the switch keeps only candidates
// that are real edges and forwards them to the owner of their source
// vertex.
type GraphConfig struct {
	// Hosts partition the vertex set: vertex v is owned by host v % Hosts.
	Hosts int
	// EdgesPerPacket is the candidate batch width.
	EdgesPerPacket int
}

// Validate checks the configuration.
func (c GraphConfig) Validate() error {
	if c.Hosts <= 0 || c.EdgesPerPacket <= 0 {
		return fmt.Errorf("apps: bad graph config %+v", c)
	}
	return nil
}

// edgeKey packs an edge into a table key.
func edgeKey(e packet.Edge) uint64 { return uint64(e.Src)<<32 | uint64(e.Dst) }

// graphFilter matches the candidate batch against the edge table and emits
// survivors grouped by owner host.
func graphFilter(st *pipeline.Stage, ctx *pipeline.Context, cfg GraphConfig) error {
	g := &ctx.Decoded.Graph
	keys := make([]uint64, len(g.Edges))
	for i, e := range g.Edges {
		keys[i] = edgeKey(e)
	}
	results := make([]mat.Result, len(keys))
	hits := make([]bool, len(keys))
	if _, err := st.Mem.LookupBatch(keys, results, hits); err != nil {
		return err
	}
	perOwner := make(map[int][]packet.Edge)
	for i, e := range g.Edges {
		if hits[i] {
			perOwner[int(e.Src)%cfg.Hosts] = append(perOwner[int(e.Src)%cfg.Hosts], e)
			st.Regs.Execute(mat.RegAdd, 0, 1) // matched-edge counter
		}
	}
	owners := make([]int, 0, len(perOwner))
	for o := range perOwner {
		owners = append(owners, o)
	}
	sort.Ints(owners) // map order would make the emission order nondeterministic
	for _, owner := range owners {
		res := packet.Build(packet.Header{
			Proto:    packet.ProtoGraph,
			CoflowID: ctx.Decoded.Base.CoflowID,
			Flags:    packet.FlagFromSwch,
		}, &packet.GraphHeader{Round: g.Round, Edges: perOwner[owner]})
		ctx.Emit(res, owner)
	}
	ctx.Verdict = pipeline.VerdictConsume
	return nil
}

// GraphMineADCP is the ADCP deployment: the edge set is hash-partitioned
// by source vertex across central pipelines, candidates batch
// partition-aligned (PartitionEdges), and a whole batch matches in one
// traversal.
type GraphMineADCP struct {
	*core.Switch
	cfg GraphConfig
}

// NewGraphMineADCP builds the switch.
func NewGraphMineADCP(cfg core.Config, gc GraphConfig) (*GraphMineADCP, error) {
	if err := gc.Validate(); err != nil {
		return nil, err
	}
	P := cfg.CentralPipelines
	central := &pipeline.Program{
		Name: "graphmine-central",
		Funcs: []pipeline.StageFunc{
			func(st *pipeline.Stage, ctx *pipeline.Context) error {
				if ctx.Decoded.Base.Proto != packet.ProtoGraph {
					return nil
				}
				return graphFilter(st, ctx, gc)
			},
		},
	}
	sw, err := core.New(cfg, core.Programs{Central: central})
	if err != nil {
		return nil, err
	}
	sw.SetPartition(func(ctx *pipeline.Context) int {
		d := &ctx.Decoded
		if d.Base.Proto == packet.ProtoGraph && len(d.Graph.Edges) > 0 {
			return int(d.Graph.Edges[0].Src) % P
		}
		return int(d.Base.CoflowID) % P
	})
	return &GraphMineADCP{Switch: sw, cfg: gc}, nil
}

// InstallEdge loads one edge into its home partition.
func (g *GraphMineADCP) InstallEdge(e packet.Edge) error {
	cp := int(e.Src) % g.Config().CentralPipelines
	return g.Central(cp).Stage(0).Mem.Install(edgeKey(e), mat.Result{ActionID: 1})
}

// Matched returns the total matched-edge count across partitions.
func (g *GraphMineADCP) Matched() uint64 {
	var n uint64
	for i := 0; i < g.Config().CentralPipelines; i++ {
		n += g.Central(i).Stage(0).Regs.Peek(0)
	}
	return n
}

// SRAMUsed sums edge-table entries across partitions.
func (g *GraphMineADCP) SRAMUsed() int {
	n := 0
	for i := 0; i < g.Config().CentralPipelines; i++ {
		n += g.Central(i).Stage(0).Mem.SRAMUsed()
	}
	return n
}

// GraphMineRMT is the restructured RMT deployment: the edge table is
// installed in every ingress pipeline with EdgesPerPacket-fold replication
// (Figure 3) so a candidate batch matches in one traversal.
type GraphMineRMT struct {
	*rmt.Switch
	cfg GraphConfig
}

// NewGraphMineRMT builds the switch.
func NewGraphMineRMT(cfg rmt.Config, gc GraphConfig) (*GraphMineRMT, error) {
	if err := gc.Validate(); err != nil {
		return nil, err
	}
	if gc.EdgesPerPacket > cfg.Pipe.MAUsPerStage {
		return nil, fmt.Errorf("apps: %d edges/packet exceeds %d MAUs", gc.EdgesPerPacket, cfg.Pipe.MAUsPerStage)
	}
	ingress := &pipeline.Program{
		Name: "graphmine-rmt",
		Funcs: []pipeline.StageFunc{
			func(st *pipeline.Stage, ctx *pipeline.Context) error {
				if ctx.Decoded.Base.Proto != packet.ProtoGraph {
					return nil
				}
				return graphFilter(st, ctx, gc)
			},
		},
	}
	sw, err := rmt.New(cfg, ingress, nil)
	if err != nil {
		return nil, err
	}
	for pl := 0; pl < cfg.Pipelines; pl++ {
		if err := sw.Ingress(pl).Stage(0).Mem.ConfigureReplication(gc.EdgesPerPacket); err != nil {
			return nil, err
		}
	}
	return &GraphMineRMT{Switch: sw, cfg: gc}, nil
}

// InstallEdge loads one edge into every ingress pipeline (each of which
// holds EdgesPerPacket replicated copies).
func (g *GraphMineRMT) InstallEdge(e packet.Edge) error {
	for pl := 0; pl < g.Config().Pipelines; pl++ {
		if err := g.Ingress(pl).Stage(0).Mem.Install(edgeKey(e), mat.Result{ActionID: 1}); err != nil {
			return err
		}
	}
	return nil
}

// SRAMUsed sums edge-table entries across pipelines (including replicas).
func (g *GraphMineRMT) SRAMUsed() int {
	n := 0
	for pl := 0; pl < g.Config().Pipelines; pl++ {
		n += g.Ingress(pl).Stage(0).Mem.SRAMUsed()
	}
	return n
}

// PartitionEdges regroups candidate edges so each batch is partition-pure
// for src%partitions placement, capped at maxBatch.
func PartitionEdges(edges []packet.Edge, partitions, maxBatch int) [][]packet.Edge {
	byPart := make([][]packet.Edge, partitions)
	for _, e := range edges {
		i := int(e.Src) % partitions
		byPart[i] = append(byPart[i], e)
	}
	var out [][]packet.Edge
	for _, batch := range byPart {
		for len(batch) > maxBatch {
			out = append(out, batch[:maxBatch])
			batch = batch[maxBatch:]
		}
		if len(batch) > 0 {
			out = append(out, batch)
		}
	}
	return out
}
