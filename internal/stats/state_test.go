package stats

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// Restore-then-merge must be indistinguishable from merging the live
// object — the telemetry persistence layer leans on these round trips.
func TestGaugeStateRoundTrip(t *testing.T) {
	g := &Gauge{}
	g.Set(9)
	g.Set(3)
	r := &Gauge{}
	r.RestoreState(g.State())
	if r.Value() != g.Value() || r.Peak() != g.Peak() {
		t.Fatalf("restored gauge (v=%d peak=%d) != live (v=%d peak=%d)",
			r.Value(), r.Peak(), g.Value(), g.Peak())
	}
	// An unset gauge must restore as unset: the first Set after restore
	// establishes the peak, it does not compete with a phantom zero.
	var zero Gauge
	r2 := &Gauge{}
	r2.RestoreState(zero.State())
	r2.Set(-5)
	if r2.Peak() != -5 {
		t.Fatalf("restored zero gauge lost its unset flag: peak=%d, want -5", r2.Peak())
	}
}

func TestLogHistStateRoundTrip(t *testing.T) {
	h := &LogHist{}
	for _, v := range []float64{0, 1, 2.5, 1000, 1e9, 3, 3, 3} {
		h.Observe(v)
	}
	r := &LogHist{}
	r.RestoreState(h.State())
	if !reflect.DeepEqual(r.State(), h.State()) {
		t.Fatalf("restored state %+v != live %+v", r.State(), h.State())
	}
	if r.Count() != h.Count() || r.Sum() != h.Sum() ||
		r.Min() != h.Min() || r.Max() != h.Max() ||
		r.Quantile(0.5) != h.Quantile(0.5) || r.Quantile(0.99) != h.Quantile(0.99) {
		t.Fatal("restored histogram readouts diverge from the live ones")
	}

	// Merging the restored copy must equal merging the live one.
	a, b := &LogHist{}, &LogHist{}
	for _, v := range []float64{7, 70, 700} {
		a.Observe(v)
		b.Observe(v)
	}
	a.Merge(h)
	b.Merge(r)
	if !reflect.DeepEqual(a.State(), b.State()) {
		t.Fatalf("merge(live) %+v != merge(restored) %+v", a.State(), b.State())
	}
}

func TestTableJSONRoundTripMerges(t *testing.T) {
	frag := NewTable("title", "a", "b")
	frag.AddRow("x", "1")
	frag.AddRow("y", "2")
	enc, err := json.Marshal(frag)
	if err != nil {
		t.Fatal(err)
	}
	var back Table
	if err := json.Unmarshal(enc, &back); err != nil {
		t.Fatal(err)
	}

	direct := NewTable("title", "a", "b")
	direct.Merge(frag)
	via := NewTable("title", "a", "b")
	via.Merge(&back)
	if direct.String() != via.String() {
		t.Fatalf("table through JSON renders differently:\ndirect:\n%s\nvia JSON:\n%s", direct, via)
	}
	if !bytes.Contains([]byte(direct.String()), []byte("x")) {
		t.Fatalf("merged table lost rows:\n%s", direct)
	}
}
