package stats

import (
	"encoding/json"
	"fmt"
	"sort"
)

// This file gives the accumulator types an explicit, canonical serialized
// form so a quiescent telemetry hub can be persisted by the run journal
// (internal/runstate) and restored on -resume with merge semantics
// identical to merging the live object. Canonical means: encoding the
// same logical state always yields the same bytes (maps are emitted as
// sorted pairs), which the resume byte-identity guarantee depends on.

// GaugeState is the serializable state of a Gauge.
type GaugeState struct {
	V    int64 `json:"v"`
	Peak int64 `json:"peak"`
	Set  bool  `json:"set"`
}

// State snapshots the gauge.
func (g *Gauge) State() GaugeState {
	return GaugeState{V: g.v, Peak: g.peak, Set: g.peakSet}
}

// RestoreState overwrites the gauge with a previously captured state.
func (g *Gauge) RestoreState(s GaugeState) {
	g.v, g.peak, g.peakSet = s.V, s.Peak, s.Set
}

// LogHistBucket is one live bucket of a serialized LogHist.
type LogHistBucket struct {
	ID    int32  `json:"id"`
	Count uint64 `json:"n"`
}

// LogHistState is the serializable state of a LogHist. Buckets are sorted
// by id so the encoding is canonical.
type LogHistState struct {
	Buckets []LogHistBucket `json:"buckets,omitempty"`
	Zero    uint64          `json:"zero,omitempty"`
	N       uint64          `json:"count"`
	Sum     float64         `json:"sum"`
	SumSq   float64         `json:"sum_sq"`
	Min     float64         `json:"min"`
	Max     float64         `json:"max"`
}

// State snapshots the histogram.
func (h *LogHist) State() LogHistState {
	s := LogHistState{Zero: h.zero, N: h.n, Sum: h.sum, SumSq: h.sumSq, Min: h.min, Max: h.max}
	if len(h.counts) > 0 {
		s.Buckets = make([]LogHistBucket, 0, len(h.counts))
		for id, c := range h.counts {
			s.Buckets = append(s.Buckets, LogHistBucket{ID: id, Count: c})
		}
		sort.Slice(s.Buckets, func(i, j int) bool { return s.Buckets[i].ID < s.Buckets[j].ID })
	}
	return s
}

// RestoreState overwrites the histogram with a previously captured state.
// Restore followed by Merge into another histogram is indistinguishable
// from merging the original live histogram.
func (h *LogHist) RestoreState(s LogHistState) {
	h.Reset()
	h.zero, h.n, h.sum, h.sumSq, h.min, h.max = s.Zero, s.N, s.Sum, s.SumSq, s.Min, s.Max
	if len(s.Buckets) > 0 {
		h.counts = make(map[int32]uint64, len(s.Buckets))
		for _, b := range s.Buckets {
			h.counts[b.ID] = b.Count
		}
	}
	h.sorted = nil
}

// tableState mirrors Table's unexported fields for JSON round-tripping.
type tableState struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// MarshalJSON serializes the table (title, headers, rows) so sweep table
// fragments can be persisted per point and merged on resume.
func (t *Table) MarshalJSON() ([]byte, error) {
	return json.Marshal(tableState{Title: t.title, Headers: t.headers, Rows: t.rows})
}

// UnmarshalJSON restores a table serialized by MarshalJSON.
func (t *Table) UnmarshalJSON(b []byte) error {
	var s tableState
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("stats: decode table: %w", err)
	}
	t.title, t.headers, t.rows = s.Title, s.Headers, s.Rows
	return nil
}
