package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestLogHistEmpty(t *testing.T) {
	var h LogHist
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 ||
		h.Quantile(0.5) != 0 || h.Stddev() != 0 || h.Buckets() != 0 {
		t.Fatal("zero LogHist must report zeros everywhere")
	}
}

func TestLogHistExactStats(t *testing.T) {
	var h LogHist
	vals := []float64{5, 1, 4, 2, 3, 0, -2.5}
	var sum float64
	for _, v := range vals {
		h.Observe(v)
		sum += v
	}
	if h.Count() != len(vals) {
		t.Fatalf("Count = %d, want %d", h.Count(), len(vals))
	}
	if h.Sum() != sum {
		t.Fatalf("Sum = %g, want %g", h.Sum(), sum)
	}
	if h.Min() != -2.5 || h.Max() != 5 {
		t.Fatalf("Min/Max = %g/%g, want -2.5/5", h.Min(), h.Max())
	}
	if got, want := h.Mean(), sum/float64(len(vals)); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Mean = %g, want %g", got, want)
	}
	// Extremes are exact regardless of bucketing.
	if h.Quantile(0) != -2.5 || h.Quantile(1) != 5 {
		t.Fatalf("Quantile extremes = %g/%g", h.Quantile(0), h.Quantile(1))
	}
}

// Quantiles must track the exact Histogram within the documented relative
// error bound on random data spanning several orders of magnitude.
func TestLogHistQuantileErrorVsExact(t *testing.T) {
	const tol = 0.05 // acceptance bound; actual design bound is ~1.6%
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		var exact Histogram
		var lh LogHist
		n := 1000 + rng.Intn(9000)
		for i := 0; i < n; i++ {
			// Log-uniform over [1e-3, 1e6): the regime of latencies in ps.
			v := math.Pow(10, rng.Float64()*9-3)
			exact.Observe(v)
			lh.Observe(v)
		}
		for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999} {
			want := exact.Quantile(q)
			got := lh.Quantile(q)
			if rel := math.Abs(got-want) / want; rel > tol {
				t.Errorf("trial %d q=%g: LogHist=%g exact=%g rel err %.3f > %g",
					trial, q, got, want, rel, tol)
			}
		}
	}
}

// Memory must stay O(buckets) no matter how many observations arrive.
func TestLogHistBoundedMemory(t *testing.T) {
	var h LogHist
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200000; i++ {
		h.Observe(math.Pow(10, rng.Float64()*6)) // [1, 1e6)
	}
	if h.Count() != 200000 {
		t.Fatalf("Count = %d", h.Count())
	}
	// 6 decades ≈ 20 octaves × 32 sub-buckets = 640 possible buckets.
	if b := h.Buckets(); b > 700 {
		t.Fatalf("Buckets = %d, want O(hundreds) independent of 200k observations", b)
	}
}

func TestLogHistMerge(t *testing.T) {
	var a, b, whole LogHist
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		v := rng.ExpFloat64() * 1000
		whole.Observe(v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	a.Merge(&b)
	if a.Count() != whole.Count() {
		t.Fatalf("merged count = %d, want %d", a.Count(), whole.Count())
	}
	// Sums differ only by float addition order.
	if math.Abs(a.Sum()-whole.Sum()) > 1e-9*math.Abs(whole.Sum()) {
		t.Fatalf("merged sum = %g, want %g", a.Sum(), whole.Sum())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatalf("merged min/max = %g/%g, want %g/%g", a.Min(), a.Max(), whole.Min(), whole.Max())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		if got, want := a.Quantile(q), whole.Quantile(q); got != want {
			t.Errorf("q=%g: merged %g != whole %g (merge must be lossless)", q, got, want)
		}
	}
	// Merging into an empty histogram copies o.
	var c LogHist
	c.Merge(&whole)
	if c.Count() != whole.Count() || c.Quantile(0.5) != whole.Quantile(0.5) {
		t.Error("merge into empty lost data")
	}
}

func TestLogHistNegativeAndZero(t *testing.T) {
	var h LogHist
	for _, v := range []float64{-100, -10, -1, 0, 0, 1, 10, 100} {
		h.Observe(v)
	}
	// Median of 8 values (nearest rank 4) is the second zero → 0.
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("median = %g, want 0", got)
	}
	if got := h.Quantile(0.125); math.Abs(got-(-100))/100 > 0.05 {
		t.Fatalf("q0.125 = %g, want ≈ -100", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Fatalf("q1 = %g, want 100", got)
	}
}

func TestLogHistReset(t *testing.T) {
	var h LogHist
	h.Observe(5)
	h.Observe(-5)
	h.Observe(0)
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Buckets() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("Reset did not clear state")
	}
	h.Observe(3)
	if h.Quantile(0.5) != 3 {
		t.Fatalf("post-reset median = %g, want 3", h.Quantile(0.5))
	}
}

// Stddev must agree with the exact histogram (both are moment-based).
func TestLogHistStddev(t *testing.T) {
	var h LogHist
	var e Histogram
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		h.Observe(v)
		e.Observe(v)
	}
	if got, want := h.Stddev(), e.Stddev(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Stddev = %g, want %g", got, want)
	}
}
