package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Error("zero value not zero")
	}
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("Value = %d, want 5", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Error("Reset did not zero")
	}
}

func TestGaugePeak(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Set(3)
	g.Add(2)
	if g.Value() != 5 {
		t.Errorf("Value = %d, want 5", g.Value())
	}
	if g.Peak() != 10 {
		t.Errorf("Peak = %d, want 10", g.Peak())
	}
	g.Add(20)
	if g.Peak() != 25 {
		t.Errorf("Peak = %d, want 25", g.Peak())
	}
}

// A gauge that only ever held negative values must report its true
// (negative) maximum, not the implicit zero initialization.
func TestGaugePeakAllNegative(t *testing.T) {
	var g Gauge
	g.Set(-7)
	g.Set(-3)
	g.Set(-12)
	if g.Peak() != -3 {
		t.Errorf("Peak = %d, want -3", g.Peak())
	}
	var unset Gauge
	if unset.Peak() != 0 {
		t.Errorf("unset gauge Peak = %d, want 0", unset.Peak())
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram should report zeros")
	}
	for _, v := range []float64{5, 1, 3, 2, 4} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
	if h.Sum() != 15 {
		t.Errorf("Sum = %v, want 15", h.Sum())
	}
	if h.Mean() != 3 {
		t.Errorf("Mean = %v, want 3", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 5 {
		t.Errorf("Min/Max = %v/%v, want 1/5", h.Min(), h.Max())
	}
	if q := h.Quantile(0.5); q != 3 {
		t.Errorf("median = %v, want 3", q)
	}
	if q := h.Quantile(0); q != 1 {
		t.Errorf("q0 = %v, want 1", q)
	}
	if q := h.Quantile(1); q != 5 {
		t.Errorf("q1 = %v, want 5", q)
	}
}

func TestHistogramObserveAfterQuantile(t *testing.T) {
	var h Histogram
	h.Observe(10)
	_ = h.Quantile(0.5) // forces sort
	h.Observe(1)
	if h.Min() != 1 {
		t.Errorf("Min after late observe = %v, want 1", h.Min())
	}
}

func TestHistogramStddev(t *testing.T) {
	var h Histogram
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		h.Observe(v)
	}
	if got := h.Stddev(); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("Stddev = %v, want 2", got)
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestHistogramQuantileProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, v := range raw {
			h.Observe(float64(v))
		}
		prev := math.Inf(-1)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			v := h.Quantile(q)
			if v < prev || v < h.Min() || v > h.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: mean lies within [min, max].
func TestHistogramMeanBounds(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		vals := make([]float64, len(raw))
		for i, v := range raw {
			vals[i] = float64(v)
			h.Observe(float64(v))
		}
		sort.Float64s(vals)
		m := h.Mean()
		return m >= vals[0]-1e-9 && m <= vals[len(vals)-1]+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMeterRate(t *testing.T) {
	m := Meter{Count: 1000}
	// 1000 events in 1 microsecond = 1e9 events/sec.
	if got := m.Rate(1_000_000); got != 1e9 {
		t.Errorf("Rate = %v, want 1e9", got)
	}
	if got := m.Rate(0); got != 0 {
		t.Errorf("Rate(0) = %v, want 0", got)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Demo", "name", "value")
	tbl.AddRow("alpha", "1")
	tbl.AddRowf("beta", 12800.0)
	out := tbl.String()
	if !strings.Contains(out, "Demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "beta") {
		t.Error("missing rows")
	}
	if !strings.Contains(out, "12.80k") {
		t.Errorf("AddRowf did not SI-format: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("rendered %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestTableRowPadding(t *testing.T) {
	tbl := NewTable("", "a", "b", "c")
	tbl.AddRow("only") // short row pads
	out := tbl.String()
	if !strings.Contains(out, "only") {
		t.Error("short row missing")
	}
}

// A row wider than the header must fail loudly: silent truncation has
// already hidden data from table output once.
func TestTableOverWideRowPanics(t *testing.T) {
	tbl := NewTable("t", "a", "b", "c")
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("AddRow with 4 cells for 3 headers did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "4 cells for 3 headers") {
			t.Errorf("panic message %v lacks cell/header counts", r)
		}
	}()
	tbl.AddRow("1", "2", "3", "4")
}

func TestFormatSI(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{12.8e12, "12.80T"},
		{5.95e9, "5.95G"},
		{1.25e6, "1.25M"},
		{6400, "6.40k"},
		{84, "84"},
		{0.95, "0.95"},
		{-1.62e9, "-1.62G"},
	}
	for _, c := range cases {
		if got := FormatSI(c.v); got != c.want {
			t.Errorf("FormatSI(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}
