package stats

import (
	"fmt"
	"math/rand"
	"testing"
)

// histEqual compares every exported statistic of two histograms,
// including the quantile ladder (bucket contents).
func histEqual(a, b *LogHist) bool {
	if a.Count() != b.Count() || a.Sum() != b.Sum() ||
		a.Min() != b.Min() || a.Max() != b.Max() ||
		a.Buckets() != b.Buckets() || a.Stddev() != b.Stddev() {
		return false
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if a.Quantile(q) != b.Quantile(q) {
			return false
		}
	}
	return true
}

// LogHist.Merge must be associative and order-insensitive up to every
// exported statistic: the parallel sweep engine merges point-local
// histograms in point order, and the result must not depend on how the
// observations were partitioned. Property-tested over seeded random
// partitions of random observation streams.
func TestLogHistMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(0xAB5))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(400)
		obs := make([]float64, n)
		for i := range obs {
			// Integer-valued observations across magnitudes and signs: their
			// float sums are exact, so associativity can be asserted bit-for-
			// bit. (The sweep engine never re-partitions raw observations —
			// it merges whole per-point histograms in a fixed order — so
			// float-rounding order sensitivity is out of scope by design.)
			obs[i] = float64(rng.Intn(1<<(1+rng.Intn(20))) - 500)
		}

		// Reference: everything observed into one histogram.
		var ref LogHist
		for _, v := range obs {
			ref.Observe(v)
		}

		// Partition into k parts, merge (a⊕b)⊕c… and a⊕(b⊕c…).
		k := 2 + rng.Intn(5)
		parts := make([]*LogHist, k)
		for i := range parts {
			parts[i] = &LogHist{}
		}
		for i, v := range obs {
			parts[i%k].Observe(v)
		}

		var left LogHist
		for _, p := range parts {
			left.Merge(p)
		}
		var rightTail LogHist
		for _, p := range parts[1:] {
			rightTail.Merge(p)
		}
		right := &LogHist{}
		right.Merge(parts[0])
		right.Merge(&rightTail)

		if !histEqual(&left, &ref) {
			t.Fatalf("trial %d: left-fold merge diverged from direct observation (n=%d, k=%d)", trial, n, k)
		}
		if !histEqual(right, &ref) {
			t.Fatalf("trial %d: right-fold merge diverged from direct observation (n=%d, k=%d)", trial, n, k)
		}
	}
}

func TestLogHistMergeEmpty(t *testing.T) {
	var a, b LogHist
	a.Observe(3)
	a.Merge(&b) // empty source: no-op
	if a.Count() != 1 || a.Sum() != 3 {
		t.Errorf("merge with empty changed stats: count=%d sum=%g", a.Count(), a.Sum())
	}
	b.Merge(&a) // empty destination adopts source
	if !histEqual(&a, &b) {
		t.Error("empty destination did not adopt the source histogram")
	}
	a.Merge(nil)
}

func TestGaugeMerge(t *testing.T) {
	var dst, src Gauge
	dst.Set(10)
	dst.Set(4) // peak 10, value 4
	src.Set(7)
	src.Set(2) // peak 7, value 2
	dst.Merge(&src)
	if dst.Value() != 2 {
		t.Errorf("value = %d, want source's newest 2", dst.Value())
	}
	if dst.Peak() != 10 {
		t.Errorf("peak = %d, want max 10", dst.Peak())
	}

	// A source never Set must not clobber the destination.
	var untouched Gauge
	dst.Merge(&untouched)
	if dst.Value() != 2 || dst.Peak() != 10 {
		t.Errorf("unset source changed gauge: value=%d peak=%d", dst.Value(), dst.Peak())
	}
	dst.Merge(nil)

	// Higher source peak wins.
	var spiky Gauge
	spiky.Set(99)
	spiky.Set(0)
	dst.Merge(&spiky)
	if dst.Peak() != 99 || dst.Value() != 0 {
		t.Errorf("after spiky merge: value=%d peak=%d, want 0/99", dst.Value(), dst.Peak())
	}
}

func TestTableMerge(t *testing.T) {
	mk := func(rows ...int) *Table {
		t := NewTable("sweep", "a", "b")
		for _, r := range rows {
			t.AddRow(fmt.Sprintf("r%d", r), fmt.Sprintf("v%d", r))
		}
		return t
	}
	ref := mk(1, 2, 3, 4)
	got := mk(1)
	got.Merge(mk(2, 3))
	got.Merge(mk()) // empty fragment
	got.Merge(nil)  // nil fragment
	got.Merge(mk(4))
	if got.String() != ref.String() {
		t.Errorf("merged table:\n%s\nwant:\n%s", got.String(), ref.String())
	}
}

func TestTableMergeHeaderMismatchPanics(t *testing.T) {
	a := NewTable("x", "col1", "col2")
	b := NewTable("x", "col1", "OTHER")
	defer func() {
		if recover() == nil {
			t.Fatal("merging tables with different headers did not panic")
		}
	}()
	a.Merge(b)
}
