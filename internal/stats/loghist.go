package stats

import (
	"math"
	"sort"
)

// logHistSubBuckets is the number of linear sub-buckets per power-of-two
// octave. 32 sub-buckets bound the relative width of any bucket by 1/32,
// so reporting the arithmetic midpoint of a bucket is within 1/64 ≈ 1.6%
// of any value stored in it — comfortably inside the ≤5% error budget the
// telemetry layer promises for quantiles.
const logHistSubBuckets = 32

// LogHist is a bounded-memory, log-bucketed histogram (HDR-style): values
// map in O(1) to one of a fixed family of buckets whose width grows
// geometrically, so memory is O(distinct buckets) — a few hundred entries
// for any latency range — instead of O(observations). Quantiles are
// approximate with relative error ≤ 1/(2·logHistSubBuckets); count, sum,
// mean, min, and max are exact. Two LogHists merge bucket-by-bucket.
//
// The zero value is ready to use. LogHist is not safe for concurrent use;
// wrap it (as internal/telemetry does) when observed from registry paths.
type LogHist struct {
	counts map[int32]uint64 // bucket id → count; see bucketOf
	zero   uint64           // exact-zero observations
	n      uint64
	sum    float64
	sumSq  float64
	min    float64
	max    float64

	sorted []int32 // cached ascending bucket ids; nil when dirty
}

// bucketOf maps a non-zero value to its bucket key. The magnitude's
// log-linear bucket id (which is negative for |v| < 0.5, since frexp
// exponents go negative) occupies the high bits; the sign of v is the low
// bit, so positive and negative values can never alias.
func bucketOf(v float64) int32 {
	neg := v < 0
	if neg {
		v = -v
	}
	frac, exp := math.Frexp(v) // v = frac·2^exp, frac ∈ [0.5, 1)
	sub := int32((frac - 0.5) * (2 * logHistSubBuckets))
	if sub >= logHistSubBuckets { // guard against rounding at frac→1
		sub = logHistSubBuckets - 1
	}
	id := int32(exp)*logHistSubBuckets + sub
	key := id << 1
	if neg {
		key |= 1
	}
	return key
}

// bucketMid returns the representative (arithmetic midpoint) of a bucket.
func bucketMid(key int32) float64 {
	neg := key&1 == 1
	id := key >> 1 // arithmetic shift: floors, recovering negative ids
	exp := id / logHistSubBuckets
	sub := id % logHistSubBuckets
	if sub < 0 { // Go truncates toward zero; we need floor semantics
		exp--
		sub += logHistSubBuckets
	}
	lo := math.Ldexp(1+float64(sub)/logHistSubBuckets, int(exp)-1)
	hi := math.Ldexp(1+float64(sub+1)/logHistSubBuckets, int(exp)-1)
	mid := (lo + hi) / 2
	if neg {
		return -mid
	}
	return mid
}

// Observe records one value in O(1).
func (h *LogHist) Observe(v float64) {
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
	h.sumSq += v * v
	if v == 0 {
		h.zero++
		return
	}
	if h.counts == nil {
		h.counts = make(map[int32]uint64)
	}
	id := bucketOf(v)
	if _, ok := h.counts[id]; !ok {
		h.sorted = nil
	}
	h.counts[id]++
}

// Count returns the number of observations.
func (h *LogHist) Count() int { return int(h.n) }

// Sum returns the exact sum of all observations.
func (h *LogHist) Sum() float64 { return h.sum }

// Mean returns the exact arithmetic mean, or 0 with no observations.
func (h *LogHist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min returns the exact smallest observation, or 0 with no observations.
func (h *LogHist) Min() float64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the exact largest observation, or 0 with no observations.
func (h *LogHist) Max() float64 {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Stddev returns the population standard deviation (exact up to float
// accumulation error).
func (h *LogHist) Stddev() float64 {
	if h.n == 0 {
		return 0
	}
	mean := h.Mean()
	v := h.sumSq/float64(h.n) - mean*mean
	if v < 0 { // float cancellation on near-constant data
		v = 0
	}
	return math.Sqrt(v)
}

// Buckets returns the number of live buckets — the memory footprint.
func (h *LogHist) Buckets() int {
	n := len(h.counts)
	if h.zero > 0 {
		n++
	}
	return n
}

// sortedIDs returns live bucket ids in ascending numeric-value order.
func (h *LogHist) sortedIDs() []int32 {
	if h.sorted == nil {
		ids := make([]int32, 0, len(h.counts))
		for id := range h.counts {
			ids = append(ids, id)
		}
		// Negative ids are mirrored (-1-id of |v|): among them, a larger
		// raw id means a larger magnitude, i.e. a smaller value — so plain
		// ascending id order is exactly ascending value order only for
		// positives. Sort by the representative value instead.
		sort.Slice(ids, func(i, j int) bool { return bucketMid(ids[i]) < bucketMid(ids[j]) })
		h.sorted = ids
	}
	return h.sorted
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by nearest rank over the
// buckets. The result is the midpoint of the bucket holding the rank,
// clamped to the exact observed [Min, Max]; relative error is bounded by
// half a bucket width (≤ 1/(2·logHistSubBuckets) ≈ 1.6%).
func (h *LogHist) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	rank := uint64(math.Ceil(q * float64(h.n)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	v := h.max
	found := false
	// Walk negatives, zero, then positives in ascending value order.
	ids := h.sortedIDs()
	i := 0
	for ; i < len(ids) && bucketMid(ids[i]) < 0; i++ {
		cum += h.counts[ids[i]]
		if cum >= rank {
			v, found = bucketMid(ids[i]), true
			break
		}
	}
	if !found {
		cum += h.zero
		if h.zero > 0 && cum >= rank {
			v, found = 0, true
		}
	}
	if !found {
		for ; i < len(ids); i++ {
			cum += h.counts[ids[i]]
			if cum >= rank {
				v, found = bucketMid(ids[i]), true
				break
			}
		}
	}
	if v < h.min {
		v = h.min
	}
	if v > h.max {
		v = h.max
	}
	return v
}

// Merge folds o into h bucket-by-bucket. Both histograms use the same
// fixed bucket family, so merging loses no resolution.
func (h *LogHist) Merge(o *LogHist) {
	if o == nil || o.n == 0 {
		return
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.n == 0 || o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
	h.sum += o.sum
	h.sumSq += o.sumSq
	h.zero += o.zero
	if len(o.counts) > 0 && h.counts == nil {
		h.counts = make(map[int32]uint64, len(o.counts))
	}
	for id, c := range o.counts {
		h.counts[id] += c
	}
	h.sorted = nil
}

// Reset returns the histogram to its zero state, keeping allocated buckets.
func (h *LogHist) Reset() {
	for id := range h.counts {
		delete(h.counts, id)
	}
	h.zero, h.n, h.sum, h.sumSq, h.min, h.max = 0, 0, 0, 0, 0, 0
	h.sorted = nil
}
