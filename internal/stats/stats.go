// Package stats provides counters, histograms, throughput meters, and the
// plain-text table renderer used by the experiment harness to print
// paper-style tables.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a monotonically increasing count. The zero value is ready to use.
type Counter struct {
	n uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.n += d }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Gauge is a settable instantaneous value that tracks its peak.
type Gauge struct {
	v, peak int64
	peakSet bool
}

// Set sets the gauge.
func (g *Gauge) Set(v int64) {
	g.v = v
	if !g.peakSet || v > g.peak {
		g.peak = v
		g.peakSet = true
	}
}

// Add adjusts the gauge by d (which may be negative).
func (g *Gauge) Add(d int64) { g.Set(g.v + d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v }

// Peak returns the maximum value ever set, even when every value was
// negative. A gauge that was never set reports 0.
func (g *Gauge) Peak() int64 { return g.peak }

// Merge folds o into g: the peak becomes the maximum of both peaks, and
// the value becomes o's — merge order is observation order, so the last
// merged gauge is the most recent writer. A never-set o leaves g alone.
func (g *Gauge) Merge(o *Gauge) {
	if o == nil || !o.peakSet {
		return
	}
	g.v = o.v
	if !g.peakSet || o.peak > g.peak {
		g.peak = o.peak
	}
	g.peakSet = true
}

// Histogram accumulates observations and reports order statistics.
// The zero value is ready to use.
type Histogram struct {
	vals   []float64
	sorted bool
	sum    float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.vals = append(h.vals, v)
	h.sorted = false
	h.sum += v
}

// Count returns the number of observations.
func (h *Histogram) Count() int { return len(h.vals) }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the arithmetic mean, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	if len(h.vals) == 0 {
		return 0
	}
	return h.sum / float64(len(h.vals))
}

// Min returns the smallest observation, or 0 with no observations.
func (h *Histogram) Min() float64 {
	h.sort()
	if len(h.vals) == 0 {
		return 0
	}
	return h.vals[0]
}

// Max returns the largest observation, or 0 with no observations.
func (h *Histogram) Max() float64 {
	h.sort()
	if len(h.vals) == 0 {
		return 0
	}
	return h.vals[len(h.vals)-1]
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by nearest-rank on the sorted
// observations, or 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	h.sort()
	if len(h.vals) == 0 {
		return 0
	}
	if q <= 0 {
		return h.vals[0]
	}
	if q >= 1 {
		return h.vals[len(h.vals)-1]
	}
	idx := int(math.Ceil(q*float64(len(h.vals)))) - 1
	if idx < 0 {
		idx = 0
	}
	return h.vals[idx]
}

// Stddev returns the population standard deviation.
func (h *Histogram) Stddev() float64 {
	n := len(h.vals)
	if n == 0 {
		return 0
	}
	mean := h.Mean()
	var ss float64
	for _, v := range h.vals {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

func (h *Histogram) sort() {
	if !h.sorted {
		sort.Float64s(h.vals)
		h.sorted = true
	}
}

// Meter converts a count accumulated over a simulated duration into a rate.
type Meter struct {
	Count uint64
}

// Rate returns Count per second for the given simulated duration in
// picoseconds. A zero duration yields 0.
func (m Meter) Rate(durationPs int64) float64 {
	if durationPs <= 0 {
		return 0
	}
	return float64(m.Count) / (float64(durationPs) / 1e12)
}

// Table renders fixed-width plain-text tables in the style of the paper.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; missing cells render empty. Passing more cells
// than the table has headers panics: silently dropping data has produced
// wrong-looking tables before, and a row wider than its header is always a
// caller bug.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.headers) {
		panic(fmt.Sprintf("stats: AddRow got %d cells for %d headers (table %q)",
			len(cells), len(t.headers), t.title))
	}
	row := make([]string, len(t.headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// Merge appends o's rows to t in order. Both tables must share the same
// header set; a mismatch panics, like AddRow, because merging fragments
// with different shapes is always a caller bug. The parallel sweep engine
// uses this to reassemble per-point table fragments in deterministic
// sweep-point order.
func (t *Table) Merge(o *Table) {
	if o == nil {
		return
	}
	if len(o.headers) != len(t.headers) {
		panic(fmt.Sprintf("stats: Merge of %d-column table into %d-column table (%q into %q)",
			len(o.headers), len(t.headers), o.title, t.title))
	}
	for i := range t.headers {
		if t.headers[i] != o.headers[i] {
			panic(fmt.Sprintf("stats: Merge header mismatch at column %d: %q vs %q",
				i, o.headers[i], t.headers[i]))
		}
	}
	t.rows = append(t.rows, o.rows...)
}

// AddRowf appends a row formatting each value with %v, floats with 4
// significant digits.
func (t *Table) AddRowf(cells ...any) {
	s := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			s[i] = FormatSI(v)
		case float32:
			s[i] = FormatSI(float64(v))
		default:
			s[i] = fmt.Sprintf("%v", c)
		}
	}
	t.AddRow(s...)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(" | ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+3*(len(widths)-1)))
	b.WriteByte('\n')
	for _, row := range t.rows {
		line(row)
	}
	return b.String()
}

// FormatSI renders v with an SI suffix (k, M, G, T) at 4 significant digits,
// e.g. 12.8e12 → "12.80T". Values below 1000 render plainly.
func FormatSI(v float64) string {
	neg := ""
	if v < 0 {
		neg = "-"
		v = -v
	}
	switch {
	case v >= 1e12:
		return fmt.Sprintf("%s%.2fT", neg, v/1e12)
	case v >= 1e9:
		return fmt.Sprintf("%s%.2fG", neg, v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%s%.2fM", neg, v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%s%.2fk", neg, v/1e3)
	case v == math.Trunc(v):
		return fmt.Sprintf("%s%.0f", neg, v)
	default:
		return fmt.Sprintf("%s%.4g", neg, v)
	}
}
