package faults

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

// FuzzRandomPlan asserts the generator's invariants for arbitrary seeds
// and shapes: every generated plan validates, all windows and the switch
// crash stay inside the horizon-derived bounds, and generation is a pure
// function of the seed. Run as a regression test over the seed corpus;
// extend with `go test -fuzz=FuzzRandomPlan ./internal/faults/`.
func FuzzRandomPlan(f *testing.F) {
	f.Add(uint64(0), 1, int64(sim.Microsecond))
	f.Add(uint64(0x50A5), 8, int64(200*sim.Microsecond))
	f.Add(uint64(0x50A9), 8, int64(200*sim.Microsecond)) // this seed draws a switch crash
	f.Add(uint64(1<<63), 16, int64(sim.Second))
	f.Fuzz(func(t *testing.T, seed uint64, hosts int, horizon int64) {
		// Clamp to the generator's domain: callers pass positive shapes.
		hosts = 1 + (hosts&0x7fffffff)%64
		h := sim.Time(8 + horizon&0x7fffffffffff) // ≥ 8 so horizon/8 windows are non-empty
		p := RandomPlan(sim.NewRNG(seed), hosts, h)
		if err := p.Validate(); err != nil {
			t.Fatalf("generated plan invalid: %v\nplan %+v", err, p)
		}
		checkWin := func(what string, ws []Window) {
			for _, w := range ws {
				if w.From < 0 || w.From >= h/2 || w.To != w.From+h/8 {
					t.Fatalf("%s window %+v outside [0, horizon/2) + horizon/8", what, w)
				}
			}
		}
		checkWin("stall", p.SwitchStall)
		for host, lf := range p.PerLink {
			if host < 0 || host >= hosts {
				t.Fatalf("per-link override for host %d of %d", host, hosts)
			}
			checkWin("link down", lf.Down)
		}
		for host, hf := range p.Hosts {
			if host < 0 || host >= hosts {
				t.Fatalf("crash schedule for host %d of %d", host, hosts)
			}
			checkWin("host crash", hf.Crash)
		}
		if p.Link.LossRate < 0 || p.Link.LossRate > 0.08 || p.Link.CorruptRate < 0 || p.Link.CorruptRate > 0.03 {
			t.Fatalf("rates out of range: %+v", p.Link)
		}
		if p.SwitchCrashAt != 0 && (p.SwitchCrashAt < h/4 || p.SwitchCrashAt >= h/4+h/2) {
			t.Fatalf("switch crash %v outside [horizon/4, 3·horizon/4)", p.SwitchCrashAt)
		}
		// Same seed, same plan — the determinism contract soak runs rely on.
		again := RandomPlan(sim.NewRNG(seed), hosts, h)
		if !reflect.DeepEqual(p, again) {
			t.Fatalf("same seed produced different plans:\n%+v\n%+v", p, again)
		}
	})
}
