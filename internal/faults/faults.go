// Package faults provides a seeded, declarative fault plan for the network
// simulator: per-link Bernoulli packet loss and corruption, link down/up
// windows, switch stall windows, and host crash/restart windows, plus the
// end-host recovery knobs (retransmission timeout, backoff, retry budget)
// that let coflows complete on a lossy network instead of silently
// stalling.
//
// Determinism contract: an Injector draws every random decision from one
// sim.RNG seeded by Plan.Seed, and the surrounding simulator consults it in
// event order — which internal/sim makes fully deterministic. A given
// (seed, plan) pair therefore reproduces the exact same fault sequence,
// byte-identically, across runs and machines. See docs/FAULTS.md.
package faults

import (
	"fmt"

	"repro/internal/sim"
)

// Window is a half-open interval [From, To) of simulated time during which
// a fault condition holds.
type Window struct {
	From, To sim.Time
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t sim.Time) bool { return t >= w.From && t < w.To }

// endOf returns the To of the first window containing t, and whether any
// does.
func endOf(ws []Window, t sim.Time) (sim.Time, bool) {
	for _, w := range ws {
		if w.Contains(t) {
			return w.To, true
		}
	}
	return 0, false
}

func validWindows(what string, ws []Window) error {
	for i, w := range ws {
		if w.From < 0 || w.To < w.From {
			return fmt.Errorf("faults: %s window %d: [%v, %v)", what, i, w.From, w.To)
		}
	}
	return nil
}

// LinkFaults describes the failure behavior of one host link (both
// directions: host→switch and switch→host share the cable).
type LinkFaults struct {
	// LossRate is the Bernoulli probability that one transmission attempt
	// vanishes on the wire.
	LossRate float64
	// CorruptRate is the Bernoulli probability that an attempt arrives
	// corrupted; the receiver detects it (CRC) and discards, so it behaves
	// like loss but is accounted separately.
	CorruptRate float64
	// Down lists windows during which the link carries nothing at all.
	Down []Window
}

func (l LinkFaults) validate(name string) error {
	if l.LossRate < 0 || l.LossRate > 1 {
		return fmt.Errorf("faults: %s loss rate %v", name, l.LossRate)
	}
	if l.CorruptRate < 0 || l.CorruptRate > 1 {
		return fmt.Errorf("faults: %s corrupt rate %v", name, l.CorruptRate)
	}
	return validWindows(name+" down", l.Down)
}

// HostFaults describes one host's crash/restart schedule.
type HostFaults struct {
	// Crash lists windows during which the host is down: it neither sends
	// (sends defer to the restart) nor receives (deliveries fail and are
	// retried by recovery).
	Crash []Window
}

// Plan is a declarative description of every fault a run injects. The zero
// value is a perfect network.
type Plan struct {
	// Seed seeds the injector's RNG; all Bernoulli draws come from it.
	Seed uint64
	// Link is the default fault behavior of every host link.
	Link LinkFaults
	// PerLink overrides Link for specific hosts.
	PerLink map[int]LinkFaults
	// Hosts holds per-host crash schedules.
	Hosts map[int]HostFaults
	// SwitchStall lists windows during which the switch stops processing;
	// arrivals are held and resume at the window's end.
	SwitchStall []Window
	// SwitchCrashAt, when positive, kills the switch at that instant —
	// unlike a stall, crashed state is gone. With a warm standby configured
	// (netsim.Config.Standby) the controller promotes it after the failover
	// delay and end hosts redirect via recovery; without one, every later
	// arrival drops dead at the port. Zero = no crash.
	SwitchCrashAt sim.Time
}

// Validate checks rates and windows.
func (p *Plan) Validate() error {
	if err := p.Link.validate("link"); err != nil {
		return err
	}
	for h, lf := range p.PerLink {
		if err := lf.validate(fmt.Sprintf("link %d", h)); err != nil {
			return err
		}
	}
	for h, hf := range p.Hosts {
		if err := validWindows(fmt.Sprintf("host %d crash", h), hf.Crash); err != nil {
			return err
		}
	}
	if p.SwitchCrashAt < 0 {
		return fmt.Errorf("faults: switch crash at %v", p.SwitchCrashAt)
	}
	return validWindows("switch stall", p.SwitchStall)
}

// linkFor returns the fault behavior of a host's link.
func (p *Plan) linkFor(host int) LinkFaults {
	if lf, ok := p.PerLink[host]; ok {
		return lf
	}
	return p.Link
}

// crashOf returns the crash windows of a host.
func (p *Plan) crashOf(host int) []Window {
	if hf, ok := p.Hosts[host]; ok {
		return hf.Crash
	}
	return nil
}

// Outcome is the fate the injector assigns to one transmission attempt.
type Outcome uint8

// Attempt outcomes.
const (
	OK       Outcome = iota // attempt succeeds
	Lost                    // Bernoulli loss: vanishes on the wire
	Corrupt                 // Bernoulli corruption: arrives, fails CRC, discarded
	LinkDown                // link in a down window: wire never energized
	HostDown                // endpoint host crashed
)

// String returns the outcome mnemonic (used as a metric label).
func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case Lost:
		return "lost"
	case Corrupt:
		return "corrupt"
	case LinkDown:
		return "link_down"
	case HostDown:
		return "host_down"
	default:
		return fmt.Sprintf("outcome(%d)", uint8(o))
	}
}

// Injector evaluates a Plan against individual transmission attempts. All
// randomness comes from its own RNG (seeded by Plan.Seed), so fault
// decisions never perturb any other random stream of the run.
type Injector struct {
	plan *Plan
	rng  *sim.RNG
}

// NewInjector builds an injector for the plan.
func NewInjector(p *Plan) *Injector {
	return &Injector{plan: p, rng: sim.NewRNG(p.Seed)}
}

// Plan returns the plan the injector evaluates.
func (in *Injector) Plan() *Plan { return in.plan }

// Attempt decides the fate of one transmission attempt on a host's link at
// time at. Availability (host crash, link down) is checked first and draws
// no randomness; surviving attempts then face the loss and corruption
// Bernoullis in that fixed order.
func (in *Injector) Attempt(host int, at sim.Time) Outcome {
	if _, down := endOf(in.plan.crashOf(host), at); down {
		return HostDown
	}
	lf := in.plan.linkFor(host)
	if _, down := endOf(lf.Down, at); down {
		return LinkDown
	}
	if in.rng.Bernoulli(lf.LossRate) {
		return Lost
	}
	if in.rng.Bernoulli(lf.CorruptRate) {
		return Corrupt
	}
	return OK
}

// AckLost decides whether the (tiny) acknowledgement on a host link's
// reverse path is lost; it shares the link's loss rate. A lost ack makes
// the sender time out and retransmit a packet the switch already has —
// the duplicate-suppression path.
func (in *Injector) AckLost(host int, at sim.Time) bool {
	if _, down := endOf(in.plan.crashOf(host), at); down {
		return true
	}
	lf := in.plan.linkFor(host)
	if _, down := endOf(lf.Down, at); down {
		return true
	}
	return in.rng.Bernoulli(lf.LossRate)
}

// StallEnd reports whether the switch is stalled at time at and, if so,
// when the stall window ends.
func (in *Injector) StallEnd(at sim.Time) (sim.Time, bool) {
	return endOf(in.plan.SwitchStall, at)
}

// HostUp reports whether the host is up (not crashed) at time at.
func (in *Injector) HostUp(host int, at sim.Time) bool {
	_, down := endOf(in.plan.crashOf(host), at)
	return !down
}

// ResumeAt returns the earliest time ≥ at when both the host and its link
// are up — where a deferred send or a restart-aware retry can proceed.
// Draws no randomness.
func (in *Injector) ResumeAt(host int, at sim.Time) sim.Time {
	t := at
	lf := in.plan.linkFor(host)
	for {
		moved := false
		if end, down := endOf(in.plan.crashOf(host), t); down {
			t, moved = end, true
		}
		if end, down := endOf(lf.Down, t); down {
			t, moved = end, true
		}
		if !moved {
			return t
		}
	}
}

// Recovery configures end-host reliability: per-flow retransmission with
// timeout, exponential backoff with cap, and a bounded retry budget. A nil
// *Recovery in netsim.Config disables retransmission entirely (faults then
// drop packets terminally, with accounting).
type Recovery struct {
	// Timeout is the initial retransmission timeout after a transmission
	// attempt completes on the wire.
	Timeout sim.Time
	// Backoff multiplies the timeout after every retransmission (≥ 1).
	Backoff float64
	// MaxTimeout caps the backed-off timeout.
	MaxTimeout sim.Time
	// MaxRetries bounds retransmissions per packet (beyond the first
	// copy); an exhausted budget drops the packet with accounting.
	MaxRetries int
}

// DefaultRecovery returns knobs suited to the default netsim timing
// (~3 µs RTT): 20 µs initial timeout, doubling to a 640 µs cap, 12 retries.
func DefaultRecovery() Recovery {
	return Recovery{
		Timeout:    20 * sim.Microsecond,
		Backoff:    2,
		MaxTimeout: 640 * sim.Microsecond,
		MaxRetries: 12,
	}
}

// Validate checks the recovery knobs.
func (r *Recovery) Validate() error {
	switch {
	case r.Timeout <= 0:
		return fmt.Errorf("faults: recovery timeout %v", r.Timeout)
	case r.Backoff < 1:
		return fmt.Errorf("faults: recovery backoff %v", r.Backoff)
	case r.MaxTimeout < r.Timeout:
		return fmt.Errorf("faults: recovery max timeout %v < timeout %v", r.MaxTimeout, r.Timeout)
	case r.MaxRetries < 0:
		return fmt.Errorf("faults: recovery retries %d", r.MaxRetries)
	}
	return nil
}

// Next returns the backed-off successor of the current timeout.
func (r *Recovery) Next(cur sim.Time) sim.Time {
	n := sim.Time(float64(cur) * r.Backoff)
	if n > r.MaxTimeout {
		n = r.MaxTimeout
	}
	if n < cur { // overflow or degenerate backoff
		n = r.MaxTimeout
	}
	return n
}

// RandomPlan draws a randomized chaos plan for soak testing: moderate loss
// and corruption everywhere, one link-down window, one switch stall, and
// one host crash, all inside the given horizon. The plan's Seed comes from
// the same RNG, so one soak seed determines the whole scenario.
func RandomPlan(rng *sim.RNG, hosts int, horizon sim.Time) *Plan {
	if hosts < 1 {
		panic("faults: RandomPlan with no hosts")
	}
	win := func() Window {
		from := sim.Time(rng.Int63() % int64(horizon/2))
		return Window{From: from, To: from + horizon/8}
	}
	p := &Plan{
		Seed: rng.Uint64(),
		Link: LinkFaults{
			LossRate:    rng.Float64() * 0.08,
			CorruptRate: rng.Float64() * 0.03,
		},
		SwitchStall: []Window{win()},
	}
	downHost := rng.Intn(hosts)
	lf := p.Link
	lf.Down = []Window{win()}
	p.PerLink = map[int]LinkFaults{downHost: lf}
	p.Hosts = map[int]HostFaults{rng.Intn(hosts): {Crash: []Window{win()}}}
	// A quarter of plans also crash the switch mid-run. This draw comes
	// last so plans without a crash keep the exact fault schedule earlier
	// seeds produced.
	if rng.Float64() < 0.25 {
		p.SwitchCrashAt = horizon/4 + sim.Time(rng.Int63()%int64(horizon/2))
	}
	return p
}
