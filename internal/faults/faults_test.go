package faults

import (
	"testing"

	"repro/internal/sim"
)

// TestPlanKnobsFireDeterministically drives every fault knob with a fixed
// seed and asserts the exact outcome sequence, pinning both that each knob
// fires and that the draw sequence is stable across runs (and Go releases —
// sim.RNG is our own xorshift).
func TestPlanKnobsFireDeterministically(t *testing.T) {
	us := sim.Microsecond
	cases := []struct {
		name     string
		plan     Plan
		host     int
		times    []sim.Time
		want     []Outcome
		wantSame bool // re-evaluate with a fresh injector and require identical outcomes
	}{
		{
			name:     "loss knob",
			plan:     Plan{Seed: 7, Link: LinkFaults{LossRate: 0.5}},
			host:     0,
			times:    []sim.Time{0, us, 2 * us, 3 * us, 4 * us, 5 * us, 6 * us, 7 * us},
			wantSame: true,
		},
		{
			name:     "corrupt knob",
			plan:     Plan{Seed: 11, Link: LinkFaults{CorruptRate: 0.5}},
			host:     0,
			times:    []sim.Time{0, us, 2 * us, 3 * us, 4 * us, 5 * us, 6 * us, 7 * us},
			wantSame: true,
		},
		{
			name: "link down window",
			plan: Plan{Seed: 3, PerLink: map[int]LinkFaults{
				1: {Down: []Window{{From: us, To: 3 * us}}},
			}},
			host:  1,
			times: []sim.Time{0, us, 2 * us, 3 * us},
			want:  []Outcome{OK, LinkDown, LinkDown, OK},
		},
		{
			name: "host crash window",
			plan: Plan{Seed: 3, Hosts: map[int]HostFaults{
				2: {Crash: []Window{{From: 0, To: 2 * us}}},
			}},
			host:  2,
			times: []sim.Time{0, us, 2 * us},
			want:  []Outcome{HostDown, HostDown, OK},
		},
		{
			name: "crash shadows link down",
			plan: Plan{
				Seed:  3,
				Link:  LinkFaults{Down: []Window{{From: 0, To: us}}},
				Hosts: map[int]HostFaults{0: {Crash: []Window{{From: 0, To: us}}}},
			},
			host:  0,
			times: []sim.Time{0, us},
			want:  []Outcome{HostDown, OK},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.plan.Validate(); err != nil {
				t.Fatal(err)
			}
			eval := func() []Outcome {
				in := NewInjector(&tc.plan)
				var got []Outcome
				for _, at := range tc.times {
					got = append(got, in.Attempt(tc.host, at))
				}
				return got
			}
			got := eval()
			if tc.want != nil {
				for i := range tc.want {
					if got[i] != tc.want[i] {
						t.Fatalf("outcomes %v, want %v", got, tc.want)
					}
				}
			}
			// Probabilistic knobs must actually fire at these rates/seeds…
			if tc.wantSame {
				fired := false
				for _, o := range got {
					if o != OK {
						fired = true
					}
				}
				if !fired {
					t.Fatalf("knob never fired: %v", got)
				}
			}
			// …and every knob must replay identically from a fresh injector.
			again := eval()
			for i := range got {
				if got[i] != again[i] {
					t.Fatalf("replay diverged: %v vs %v", got, again)
				}
			}
		})
	}
}

// TestStallAndResume covers the non-attempt queries: stall windows and
// restart-aware resume times.
func TestStallAndResume(t *testing.T) {
	us := sim.Microsecond
	p := &Plan{
		SwitchStall: []Window{{From: 2 * us, To: 4 * us}},
		Hosts:       map[int]HostFaults{0: {Crash: []Window{{From: 0, To: 3 * us}}}},
		PerLink:     map[int]LinkFaults{0: {Down: []Window{{From: 3 * us, To: 5 * us}}}},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	in := NewInjector(p)
	if _, stalled := in.StallEnd(us); stalled {
		t.Error("stalled before the window")
	}
	if end, stalled := in.StallEnd(2 * us); !stalled || end != 4*us {
		t.Errorf("StallEnd(2us) = %v, %v", end, stalled)
	}
	// Host 0 is crashed until 3us, then its link is down until 5us: resume
	// must chain across both windows.
	if up := in.ResumeAt(0, 0); up != 5*us {
		t.Errorf("ResumeAt = %v, want 5us", up)
	}
	if up := in.ResumeAt(0, 6*us); up != 6*us {
		t.Errorf("ResumeAt past windows = %v, want 6us", up)
	}
	if in.HostUp(0, us) {
		t.Error("host up during crash window")
	}
	if !in.HostUp(0, 5*us) {
		t.Error("host down after crash window")
	}
}

// TestRecoveryBackoff pins the timeout schedule: doubling to the cap.
func TestRecoveryBackoff(t *testing.T) {
	r := DefaultRecovery()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	cur := r.Timeout
	var seen []sim.Time
	for i := 0; i < 8; i++ {
		cur = r.Next(cur)
		seen = append(seen, cur)
	}
	us := sim.Microsecond
	want := []sim.Time{40 * us, 80 * us, 160 * us, 320 * us, 640 * us, 640 * us, 640 * us, 640 * us}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("backoff schedule %v, want %v", seen, want)
		}
	}
}

// TestValidateRejectsBadPlans covers the validation errors.
func TestValidateRejectsBadPlans(t *testing.T) {
	bad := []Plan{
		{Link: LinkFaults{LossRate: 1.5}},
		{Link: LinkFaults{CorruptRate: -0.1}},
		{Link: LinkFaults{Down: []Window{{From: 5, To: 2}}}},
		{Hosts: map[int]HostFaults{0: {Crash: []Window{{From: -1, To: 2}}}}},
		{SwitchStall: []Window{{From: 3, To: 1}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d validated", i)
		}
	}
	r := Recovery{Timeout: 0, Backoff: 2, MaxTimeout: 10, MaxRetries: 1}
	if err := r.Validate(); err == nil {
		t.Error("zero timeout validated")
	}
	r = Recovery{Timeout: 10, Backoff: 0.5, MaxTimeout: 10, MaxRetries: 1}
	if err := r.Validate(); err == nil {
		t.Error("shrinking backoff validated")
	}
}

// TestRandomPlanDeterministic: one soak seed determines the whole scenario.
func TestRandomPlanDeterministic(t *testing.T) {
	a := RandomPlan(sim.NewRNG(42), 8, 100*sim.Microsecond)
	b := RandomPlan(sim.NewRNG(42), 8, 100*sim.Microsecond)
	if a.Seed != b.Seed || a.Link.LossRate != b.Link.LossRate || a.Link.CorruptRate != b.Link.CorruptRate {
		t.Fatalf("plans diverge: %+v vs %+v", a, b)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}
